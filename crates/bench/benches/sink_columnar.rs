//! Telemetry sink overhead: what does instrumentation cost the
//! scheduler?
//!
//! Two groups:
//!
//! * `sink_emit` — per-event emission cost of the in-memory `Recorder`
//!   (push onto a ring) vs the `ColumnarSink` (buffer + amortised block
//!   seal), for representative event kinds: a payload-free enum event, a
//!   float-carrying bid, the widest row (`LeaseClosed`), and a duration
//!   phase. `NullSink` has no row here — its emissions compile away, and
//!   the `sink_run` group shows exactly that.
//! * `sink_run` — a whole 14-day chaotic scheduler run uninstrumented
//!   (`NullSink`), with a recorder, and with a columnar sink writing to
//!   a discarding writer. The columnar bar is the ISSUE's <10%-overhead
//!   acceptance criterion in microcosm.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_cloudsim::{InstanceId, TerminationReason};
use spothost_core::prelude::*;
use spothost_core::telemetry::{MigrationPhase, Recorder, SchedulerState, Sink, TelemetryEvent};
use spothost_core::SimRun;
use spothost_eventstore::ColumnarStore;
use spothost_market::prelude::*;
use std::hint::black_box;

fn sample_events() -> Vec<(&'static str, TelemetryEvent)> {
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    vec![
        (
            "state_change",
            TelemetryEvent::StateChange {
                state: SchedulerState::Active,
            },
        ),
        (
            "bid_placed",
            TelemetryEvent::BidPlaced {
                market,
                bid: Some(0.052),
                predicted_risk: Some(0.013),
            },
        ),
        (
            "lease_closed",
            TelemetryEvent::LeaseClosed {
                id: InstanceId(42),
                market,
                spot: true,
                reason: TerminationReason::Revoked,
                start: SimTime::hours(3),
                end: SimTime::hours(9),
                cost: 0.31,
            },
        ),
        (
            "migration_phase",
            TelemetryEvent::MigrationPhase {
                phase: MigrationPhase::LivePrecopy,
                duration: SimDuration::millis(1_850),
            },
        ),
    ]
}

fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("sink_emit");
    for (name, ev) in sample_events() {
        g.bench_function(format!("recorder/{name}"), |b| {
            let mut rec = Recorder::with_capacity(1 << 16);
            let mut t = 0u64;
            b.iter(|| {
                rec.emit(SimTime::millis(t), black_box(ev));
                t += 1;
            });
        });
        g.bench_function(format!("columnar/{name}"), |b| {
            // Discarding writer: measures encoding, not allocation of an
            // ever-growing in-memory file.
            let store = ColumnarStore::to_writer(Box::new(std::io::sink()));
            let mut sink = store.sink();
            let mut t = 0u64;
            b.iter(|| {
                sink.emit(SimTime::millis(t), black_box(ev));
                t += 1;
            });
        });
    }
    g.finish();
}

fn bench_run(c: &mut Criterion) {
    let mut faults = FaultConfig::none();
    faults.spot_capacity_rate = 0.2;
    faults.warning_miss_rate = 0.2;
    faults.ckpt_failure_rate = 0.1;
    let cfg = SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, InstanceType::Small))
        .with_policy(BiddingPolicy::Reactive)
        .with_faults(faults);
    let catalog = Catalog::ec2_2015();
    let traces = TraceSet::generate(&catalog, &cfg.candidates(), 7, SimDuration::days(14));

    let mut g = c.benchmark_group("sink_run");
    g.sample_size(20);
    g.bench_function("null", |b| {
        b.iter(|| black_box(SimRun::new(&traces, &cfg, 7).run()))
    });
    g.bench_function("recorder", |b| {
        b.iter(|| {
            let mut rec = Recorder::with_capacity(1 << 16);
            black_box(SimRun::new(&traces, &cfg, 7).with_sink(&mut rec).run())
        })
    });
    g.bench_function("columnar", |b| {
        b.iter(|| {
            let store = ColumnarStore::to_writer(Box::new(std::io::sink()));
            let report = {
                let sink = store.sink();
                SimRun::new(&traces, &cfg, 7).with_sink(sink).run()
            };
            black_box((report, store.events_written()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_emit, bench_run);
criterion_main!(benches);
