//! Micro-bench for the billing hot path: settle one long spot lease
//! against a dense price trace, replay oracle (per-hour binary search)
//! versus the incremental `SpotLeaseMeter` (cursor walk). The meter is
//! bit-identical by construction (see `billing_properties`), so the only
//! question is speed.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_cloudsim::billing::{spot_lease_charge, SpotLeaseMeter};
use spothost_market::prelude::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // A busy calibrated market over 60 days gives a dense trace; the lease
    // spans most of it, so the replay performs ~1400 binary searches.
    let catalog = Catalog::ec2_2015();
    let market = MarketId::new(Zone::UsEast1a, InstanceType::Small);
    let traces = TraceSet::generate(&catalog, &[market], 0, SimDuration::days(60));
    let trace = traces.trace(market).unwrap();
    let start = SimTime::minutes(7);
    let end = SimTime::days(59);

    let mut g = c.benchmark_group("billing_single_lease");
    g.bench_function("replay", |b| {
        b.iter(|| spot_lease_charge(black_box(trace), start, end, false))
    });
    g.bench_function("meter", |b| {
        b.iter(|| {
            let mut meter = SpotLeaseMeter::new(black_box(trace), start);
            // Advance hourly, as the scheduler's boundary events do.
            let mut t = start;
            while t < end {
                meter.advance_to(t);
                t += SimDuration::hours(1);
            }
            meter.close(end, false)
        })
    });
    g.finish();

    // Sanity: identical results (also checked bit-exactly by the property
    // suite; this guards the bench itself against drifting inputs).
    let replay = spot_lease_charge(trace, start, end, false);
    let meter = SpotLeaseMeter::new(trace, start).close(end, false);
    assert_eq!(replay.to_bits(), meter.to_bits());
}

criterion_group!(benches, bench);
criterion_main!(benches);
