//! Criterion bench for Table 2's kernel: migration-mechanism timing models.

use criterion::{criterion_group, criterion_main, Criterion};
use spothost_market::types::Region;
use spothost_virt::wan::wan_live_migration;
use spothost_virt::*;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let vm = VmSpec::paper_2gib();
    let params = VirtParams::typical();
    let mut group = c.benchmark_group("tab2");
    group.bench_function("lan_live_migration_model", |b| {
        b.iter(|| live_migration(black_box(&vm), &params))
    });
    let pair = RegionPair::new(Region::UsEast1, Region::EuWest1);
    group.bench_function("wan_live_migration_model", |b| {
        b.iter(|| wan_live_migration(black_box(&vm), &params, pair))
    });
    group.bench_function("plan_migration_all_combos", |b| {
        let ctx = MigrationContext::local(vm, Region::UsEast1);
        b.iter(|| {
            for combo in MechanismCombo::ALL {
                for kind in [MigrationKind::Forced, MigrationKind::Planned] {
                    black_box(plan_migration(combo, kind, &ctx, &params));
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
