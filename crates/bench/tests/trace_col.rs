//! `repro --trace` writes each representative recording twice: as JSONL
//! and as a `.col` columnar store. This test pins the two forms to the
//! same stream: folding the columnar store through the query layer must
//! reproduce the recorder's own aggregates exactly (same counts per
//! kind, bit-identical dollar sums, same time span).

use spothost_bench::experiments;
use spothost_bench::ExpSettings;
use spothost_core::telemetry::Sink;
use spothost_eventstore::{ColReader, ColumnarStore, EventKind, Field, Predicate};
use std::collections::BTreeMap;

fn col_roundtrip(name: &str) {
    let settings = ExpSettings::quick();
    let rec = experiments::representative_recording(name, &settings)
        .unwrap_or_else(|| panic!("{name} has no representative recording"));
    assert!(!rec.is_empty(), "{name}: empty recording");

    // Encode exactly the way `repro --trace` does (small blocks so the
    // file is multi-block), then read it back through the query layer.
    let store = ColumnarStore::in_memory().with_block_events(512);
    let mut sink = store.sink();
    for &(t, ev) in rec.events() {
        sink.emit(t, ev);
    }
    drop(sink);
    store.finish().expect("in-memory store cannot fail I/O");
    let reader = ColReader::from_bytes(&store.bytes()).expect("reopen store");
    assert_eq!(reader.event_count(), rec.len() as u64);

    let sel = reader.select(&Predicate::any()).expect("decode all blocks");
    assert_eq!(sel.events.len(), rec.len());

    // Per-kind counts match the recorder fold.
    let mut rec_kinds: BTreeMap<EventKind, u64> = BTreeMap::new();
    for (_, ev) in rec.events() {
        *rec_kinds.entry(EventKind::of(ev)).or_default() += 1;
    }
    let mut col_kinds: BTreeMap<EventKind, u64> = BTreeMap::new();
    for se in &sel.events {
        *col_kinds.entry(EventKind::of(&se.event)).or_default() += 1;
    }
    assert_eq!(rec_kinds, col_kinds, "{name}: per-kind counts diverge");

    // Every queryable field folds to the bit-identical sum (stream order
    // is preserved, so even float addition order matches).
    for field in Field::ALL {
        let rec_sum: f64 = rec.events().filter_map(|(_, ev)| field.extract(ev)).sum();
        let col_sum: f64 = sel
            .events
            .iter()
            .filter_map(|se| field.extract(&se.event))
            .sum();
        assert_eq!(
            rec_sum.to_bits(),
            col_sum.to_bits(),
            "{name}: {} sum diverges ({rec_sum} vs {col_sum})",
            field.name()
        );
    }

    // Time span survives the encoding.
    let rec_last = rec.events().map(|&(t, _)| t).max().expect("nonempty");
    let col_last = sel.events.iter().map(|se| se.at).max().expect("nonempty");
    assert_eq!(rec_last, col_last, "{name}: last event time diverges");
}

#[test]
fn jobs_columnar_trace_matches_recorder_fold() {
    col_roundtrip("jobs");
}

#[test]
fn scheduler_columnar_trace_matches_recorder_fold() {
    col_roundtrip("fig6");
}
