//! # spothost-faults
//!
//! Deterministic, seeded fault injection for the spothost simulator.
//!
//! The paper's four-nines claim rests on EC2 semantics the simulator
//! otherwise treats as infallible: every on-demand request succeeds,
//! every revocation warning arrives exactly two minutes early, and every
//! checkpoint/restore/live-migration completes. This crate provides a
//! *fault plan* — a set of per-fault-type probabilities plus independent
//! ChaCha-derived random streams — that the provider (`spothost-cloudsim`)
//! and the scheduler (`spothost-core`) consult to decide whether a given
//! operation fails, and how.
//!
//! Two properties the rest of the workspace depends on:
//!
//! * **Determinism** — every fault type draws from its own named stream
//!   derived from the run seed ([`spothost_market::gen::derive_seed`]), so
//!   a run is a pure function of `(config, seed)` and Monte-Carlo sweeps
//!   stay reproducible. Enabling one fault type never perturbs the draw
//!   sequence of another.
//! * **Zero-fault neutrality** — a draw whose configured rate is zero
//!   returns "no fault" *without advancing any stream*, so the all-zero
//!   plan (the default) is bit-identical to not having a plan at all.

pub mod config;
pub mod plan;
pub mod storm;

pub use config::FaultConfig;
pub use plan::{FaultPlan, WarningFault};
pub use storm::{StormConfig, StormEpisode, StormSchedule};

/// The injectable fault types, one per [`FaultConfig`] rate knob. Used by
/// consumers (telemetry, reports) to attribute an observed failure to the
/// fault stream that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Spot request rejected with `InsufficientCapacity`.
    SpotCapacity,
    /// On-demand request rejected with `InsufficientCapacity`.
    OdCapacity,
    /// A granted server never comes up (activation fails, closed unbilled).
    StartupFailure,
    /// A revocation warning was never delivered.
    WarningMiss,
    /// A revocation warning arrived late, eating into the grace window.
    WarningDelay,
    /// Extra delay attaching the checkpoint volume to a replacement.
    VolumeDelay,
    /// The final bounded-checkpoint flush failed (or no longer fit the
    /// remaining grace window); recovery cold-boots.
    CkptWriteFail,
    /// A live pre-copy aborted mid-flight and downgraded to a restore.
    LiveAbort,
    /// A lazy restore hit a page-fault storm, inflating its degraded window.
    LazyStorm,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::SpotCapacity => "spot-capacity",
            FaultKind::OdCapacity => "od-capacity",
            FaultKind::StartupFailure => "startup-failure",
            FaultKind::WarningMiss => "warning-miss",
            FaultKind::WarningDelay => "warning-delay",
            FaultKind::VolumeDelay => "volume-delay",
            FaultKind::CkptWriteFail => "ckpt-write-fail",
            FaultKind::LiveAbort => "live-abort",
            FaultKind::LazyStorm => "lazy-storm",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
