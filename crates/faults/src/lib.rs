//! # spothost-faults
//!
//! Deterministic, seeded fault injection for the spothost simulator.
//!
//! The paper's four-nines claim rests on EC2 semantics the simulator
//! otherwise treats as infallible: every on-demand request succeeds,
//! every revocation warning arrives exactly two minutes early, and every
//! checkpoint/restore/live-migration completes. This crate provides a
//! *fault plan* — a set of per-fault-type probabilities plus independent
//! ChaCha-derived random streams — that the provider (`spothost-cloudsim`)
//! and the scheduler (`spothost-core`) consult to decide whether a given
//! operation fails, and how.
//!
//! Two properties the rest of the workspace depends on:
//!
//! * **Determinism** — every fault type draws from its own named stream
//!   derived from the run seed ([`spothost_market::gen::derive_seed`]), so
//!   a run is a pure function of `(config, seed)` and Monte-Carlo sweeps
//!   stay reproducible. Enabling one fault type never perturbs the draw
//!   sequence of another.
//! * **Zero-fault neutrality** — a draw whose configured rate is zero
//!   returns "no fault" *without advancing any stream*, so the all-zero
//!   plan (the default) is bit-identical to not having a plan at all.

pub mod config;
pub mod plan;

pub use config::FaultConfig;
pub use plan::{FaultPlan, WarningFault};
