//! Fault-injection configuration: one probability (or magnitude) per
//! injected failure mode.

use spothost_market::time::SimDuration;

/// Probabilities and magnitudes for every injected failure mode. All
/// rates are per-operation probabilities in `[0, 1]`; the default
/// ([`FaultConfig::none`]) disables everything.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// P(spot request rejected with `InsufficientCapacity`).
    pub spot_capacity_rate: f64,
    /// P(on-demand request rejected with `InsufficientCapacity`) —
    /// on-demand requests are otherwise always granted.
    pub od_capacity_rate: f64,
    /// P(a granted server never reaches ready: its activation fails and
    /// the instance is closed unbilled).
    pub startup_failure_rate: f64,
    /// P(the revocation warning is never delivered — pre-2015 EC2 gave
    /// none; the server just dies at the out-of-bid crossing + grace).
    pub warning_miss_rate: f64,
    /// P(the warning is delivered late, eating into the grace window).
    pub warning_delay_rate: f64,
    /// P(attaching the checkpoint volume to the replacement server is
    /// delayed, pushing back the restore start).
    pub volume_delay_rate: f64,
    /// Upper bound of the uniform volume attach/detach delay.
    pub max_volume_delay: SimDuration,
    /// P(the final bounded-checkpoint flush inside the grace window
    /// fails; memory state is lost and recovery is a naive cold boot from
    /// the disk volume).
    pub ckpt_failure_rate: f64,
    /// P(a live pre-copy aborts mid-flight; the switchover falls back to
    /// the pre-staged checkpoint without the pre-copy's benefit).
    pub live_abort_rate: f64,
    /// P(a lazy restore hits a page-fault storm that inflates its
    /// degraded window by `lazy_storm_factor`).
    pub lazy_storm_rate: f64,
    /// Multiplier applied to the degraded window during a storm.
    pub lazy_storm_factor: f64,
}

impl FaultConfig {
    /// No faults (the default): every operation succeeds exactly as in a
    /// plan-less simulation.
    pub fn none() -> Self {
        FaultConfig {
            spot_capacity_rate: 0.0,
            od_capacity_rate: 0.0,
            startup_failure_rate: 0.0,
            warning_miss_rate: 0.0,
            warning_delay_rate: 0.0,
            volume_delay_rate: 0.0,
            max_volume_delay: SimDuration::secs(60),
            ckpt_failure_rate: 0.0,
            live_abort_rate: 0.0,
            lazy_storm_rate: 0.0,
            lazy_storm_factor: 4.0,
        }
    }

    /// Every failure mode at the same per-operation probability — the
    /// knob the `repro faults` sensitivity sweep turns.
    pub fn uniform(rate: f64) -> Self {
        FaultConfig {
            spot_capacity_rate: rate,
            od_capacity_rate: rate,
            startup_failure_rate: rate,
            warning_miss_rate: rate,
            warning_delay_rate: rate,
            volume_delay_rate: rate,
            ckpt_failure_rate: rate,
            live_abort_rate: rate,
            lazy_storm_rate: rate,
            ..Self::none()
        }
    }

    /// True when any fault can actually fire. Integration points skip
    /// building a [`crate::FaultPlan`] entirely when this is false.
    pub fn enabled(&self) -> bool {
        [
            self.spot_capacity_rate,
            self.od_capacity_rate,
            self.startup_failure_rate,
            self.warning_miss_rate,
            self.warning_delay_rate,
            self.volume_delay_rate,
            self.ckpt_failure_rate,
            self.live_abort_rate,
            self.lazy_storm_rate,
        ]
        .iter()
        .any(|&r| r > 0.0)
    }

    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("spot_capacity_rate", self.spot_capacity_rate),
            ("od_capacity_rate", self.od_capacity_rate),
            ("startup_failure_rate", self.startup_failure_rate),
            ("warning_miss_rate", self.warning_miss_rate),
            ("warning_delay_rate", self.warning_delay_rate),
            ("volume_delay_rate", self.volume_delay_rate),
            ("ckpt_failure_rate", self.ckpt_failure_rate),
            ("live_abort_rate", self.live_abort_rate),
            ("lazy_storm_rate", self.lazy_storm_rate),
        ];
        for (name, r) in rates {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must lie in [0,1], got {r}"));
            }
        }
        if !(self.lazy_storm_factor >= 1.0 && self.lazy_storm_factor.is_finite()) {
            return Err(format!(
                "lazy_storm_factor must be finite and >= 1, got {}",
                self.lazy_storm_factor
            ));
        }
        Ok(())
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled_and_valid() {
        let c = FaultConfig::none();
        assert!(!c.enabled());
        c.validate().unwrap();
    }

    #[test]
    fn uniform_zero_is_disabled() {
        assert!(!FaultConfig::uniform(0.0).enabled());
        assert!(FaultConfig::uniform(0.01).enabled());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut c = FaultConfig::none();
        c.warning_miss_rate = 1.5;
        assert!(c.validate().is_err());
        let mut c = FaultConfig::none();
        c.lazy_storm_factor = 0.5;
        assert!(c.validate().is_err());
        assert!(FaultConfig::uniform(1.0).validate().is_ok());
    }
}
