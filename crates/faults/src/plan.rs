//! The per-run fault plan: a [`FaultConfig`] bound to independent,
//! seed-derived random streams, one per fault type.

use crate::config::FaultConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use spothost_market::gen::derive_seed;
use spothost_market::time::SimDuration;

/// What happened to a revocation warning that should have fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarningFault {
    /// Delivered on time, the full grace window ahead of termination.
    Delivered,
    /// Delivered late by this much (eats into the grace window; a delay
    /// equal to the grace leaves no time to act at all).
    Delayed(SimDuration),
    /// Never delivered — the server dies without notice.
    Missing,
}

/// A [`FaultConfig`] bound to one run's random streams.
///
/// Each fault type draws from its own ChaCha stream derived from the run
/// seed and a per-type role string, so enabling, disabling or re-rating
/// one fault type never changes the draws of another, and zero-rate
/// draws short-circuit without advancing any stream.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Multiplier applied to every configured rate at draw time — the
    /// hook a [`crate::StormSchedule`] uses to elevate fault rates during
    /// storm episodes. Exactly 1.0 (the default) leaves every draw
    /// bit-identical to an unmodulated plan.
    storm_mult: f64,
    spot_capacity: ChaCha12Rng,
    od_capacity: ChaCha12Rng,
    startup: ChaCha12Rng,
    warning: ChaCha12Rng,
    volume: ChaCha12Rng,
    ckpt: ChaCha12Rng,
    live: ChaCha12Rng,
    lazy: ChaCha12Rng,
}

impl FaultPlan {
    /// Bind a configuration to the streams of one run seed. Panics on an
    /// invalid configuration (rates outside `[0,1]`).
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid fault config: {e}");
        }
        let stream = |role: &str| ChaCha12Rng::seed_from_u64(derive_seed(seed, role, 0));
        FaultPlan {
            cfg,
            storm_mult: 1.0,
            spot_capacity: stream("fault-spot-capacity"),
            od_capacity: stream("fault-od-capacity"),
            startup: stream("fault-startup"),
            warning: stream("fault-warning"),
            volume: stream("fault-volume"),
            ckpt: stream("fault-ckpt"),
            live: stream("fault-live"),
            lazy: stream("fault-lazy"),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Set the storm multiplier applied to every configured rate until
    /// the next call (effective rates are capped at 1). Consumers set it
    /// from [`crate::StormSchedule::fault_multiplier`] before each batch
    /// of draws; leaving it at 1.0 keeps the plan bit-identical to an
    /// unmodulated one.
    pub fn set_storm_multiplier(&mut self, mult: f64) {
        debug_assert!(mult >= 1.0 && mult.is_finite(), "storm multiplier {mult}");
        self.storm_mult = mult;
    }

    /// Does this spot request fail with `InsufficientCapacity`?
    pub fn spot_capacity_fault(&mut self) -> bool {
        draw(
            &mut self.spot_capacity,
            eff(self.storm_mult, self.cfg.spot_capacity_rate),
        )
    }

    /// Does this on-demand request fail with `InsufficientCapacity`?
    pub fn od_capacity_fault(&mut self) -> bool {
        draw(
            &mut self.od_capacity,
            eff(self.storm_mult, self.cfg.od_capacity_rate),
        )
    }

    /// Does this granted server fail to come up (activation fails, the
    /// instance is closed unbilled)?
    pub fn startup_failure(&mut self) -> bool {
        draw(
            &mut self.startup,
            eff(self.storm_mult, self.cfg.startup_failure_rate),
        )
    }

    /// Fate of the revocation warning for one doomed lease. A delayed
    /// warning lands uniformly inside `(0, grace]` after its proper time.
    pub fn warning_fault(&mut self, grace: SimDuration) -> WarningFault {
        if draw(
            &mut self.warning,
            eff(self.storm_mult, self.cfg.warning_miss_rate),
        ) {
            return WarningFault::Missing;
        }
        if draw(
            &mut self.warning,
            eff(self.storm_mult, self.cfg.warning_delay_rate),
        ) {
            let frac: f64 = self.warning.gen();
            // Uniform in (0, grace], never rounding down to zero.
            let delay = grace
                .mul_f64(1.0 - frac)
                .max(SimDuration::millis(1))
                .min(grace);
            return WarningFault::Delayed(delay);
        }
        WarningFault::Delivered
    }

    /// Extra delay before the checkpoint volume is attached to the
    /// replacement server (zero when the draw misses).
    pub fn volume_attach_delay(&mut self) -> SimDuration {
        if !draw(
            &mut self.volume,
            eff(self.storm_mult, self.cfg.volume_delay_rate),
        ) {
            return SimDuration::ZERO;
        }
        let frac: f64 = self.volume.gen();
        self.cfg.max_volume_delay.mul_f64(frac)
    }

    /// Does the final bounded-checkpoint flush inside the grace window
    /// fail (memory state lost, recovery cold-boots from disk)?
    pub fn ckpt_write_fails(&mut self) -> bool {
        draw(
            &mut self.ckpt,
            eff(self.storm_mult, self.cfg.ckpt_failure_rate),
        )
    }

    /// Does this live pre-copy abort mid-flight?
    pub fn live_migration_aborts(&mut self) -> bool {
        draw(
            &mut self.live,
            eff(self.storm_mult, self.cfg.live_abort_rate),
        )
    }

    /// Multiplier on a lazy restore's degraded window (1.0 = no storm).
    pub fn lazy_degraded_factor(&mut self) -> f64 {
        if draw(
            &mut self.lazy,
            eff(self.storm_mult, self.cfg.lazy_storm_rate),
        ) {
            self.cfg.lazy_storm_factor
        } else {
            1.0
        }
    }
}

/// A configured rate under a storm multiplier. Exact pass-through at
/// multiplier 1.0 (no float round-trip), so storms left unconfigured can
/// never perturb a draw.
fn eff(mult: f64, rate: f64) -> f64 {
    if mult == 1.0 {
        rate
    } else {
        (rate * mult).min(1.0)
    }
}

/// Bernoulli draw that is a guaranteed no-op at rate zero: the stream is
/// not advanced, so the all-zero plan is bit-identical to no plan.
fn draw(rng: &mut ChaCha12Rng, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    rng.gen_bool(rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_draws_never_fire_and_do_not_advance_streams() {
        let mut p = FaultPlan::new(FaultConfig::none(), 42);
        for _ in 0..100 {
            assert!(!p.spot_capacity_fault());
            assert!(!p.od_capacity_fault());
            assert!(!p.startup_failure());
            assert_eq!(
                p.warning_fault(SimDuration::secs(120)),
                WarningFault::Delivered
            );
            assert_eq!(p.volume_attach_delay(), SimDuration::ZERO);
            assert!(!p.ckpt_write_fails());
            assert!(!p.live_migration_aborts());
            assert_eq!(p.lazy_degraded_factor(), 1.0);
        }
        // Streams untouched: a fresh plan draws the identical sequence
        // once a rate is raised.
        let mut used = p.clone();
        let mut fresh = FaultPlan::new(FaultConfig::none(), 42);
        used.cfg.warning_miss_rate = 0.5;
        fresh.cfg.warning_miss_rate = 0.5;
        let grace = SimDuration::secs(120);
        for _ in 0..64 {
            assert_eq!(used.warning_fault(grace), fresh.warning_fault(grace));
        }
    }

    #[test]
    fn rate_one_always_fires() {
        let mut p = FaultPlan::new(FaultConfig::uniform(1.0), 7);
        for _ in 0..32 {
            assert!(p.spot_capacity_fault());
            assert!(p.od_capacity_fault());
            assert!(p.startup_failure());
            assert!(p.ckpt_write_fails());
            assert!(p.live_migration_aborts());
            assert_eq!(
                p.warning_fault(SimDuration::secs(120)),
                WarningFault::Missing
            );
            assert!(p.lazy_degraded_factor() > 1.0);
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let cfg = FaultConfig::uniform(0.3);
        let mut a = FaultPlan::new(cfg.clone(), 99);
        let mut b = FaultPlan::new(cfg, 99);
        for _ in 0..256 {
            assert_eq!(a.spot_capacity_fault(), b.spot_capacity_fault());
            assert_eq!(
                a.warning_fault(SimDuration::secs(120)),
                b.warning_fault(SimDuration::secs(120))
            );
            assert_eq!(a.volume_attach_delay(), b.volume_attach_delay());
        }
    }

    #[test]
    fn streams_are_independent_across_fault_types() {
        // Raising one rate must not change another type's draw sequence.
        let mut only_ckpt = FaultConfig::none();
        only_ckpt.ckpt_failure_rate = 0.5;
        let mut both = only_ckpt.clone();
        both.spot_capacity_rate = 0.5;
        let mut a = FaultPlan::new(only_ckpt, 5);
        let mut b = FaultPlan::new(both, 5);
        for _ in 0..256 {
            // Interleave spot draws on `b` only; ckpt draws stay in sync.
            b.spot_capacity_fault();
            assert_eq!(a.ckpt_write_fails(), b.ckpt_write_fails());
        }
    }

    #[test]
    fn warning_delay_lies_in_grace_window() {
        let mut cfg = FaultConfig::none();
        cfg.warning_delay_rate = 1.0;
        let mut p = FaultPlan::new(cfg, 11);
        let grace = SimDuration::secs(120);
        for _ in 0..256 {
            match p.warning_fault(grace) {
                WarningFault::Delayed(d) => {
                    assert!(d > SimDuration::ZERO && d <= grace, "delay {d:?}")
                }
                other => panic!("expected Delayed, got {other:?}"),
            }
        }
    }

    #[test]
    fn storm_multiplier_elevates_rates_and_unity_is_neutral() {
        let mut cfg = FaultConfig::none();
        cfg.od_capacity_rate = 0.05;
        let mut base = FaultPlan::new(cfg.clone(), 13);
        let mut unity = FaultPlan::new(cfg.clone(), 13);
        unity.set_storm_multiplier(1.0);
        let mut stormy = FaultPlan::new(cfg, 13);
        stormy.set_storm_multiplier(10.0);
        let n = 20_000;
        let mut hits = 0;
        for _ in 0..n {
            // An explicit 1.0 multiplier is draw-for-draw identical to an
            // untouched plan.
            assert_eq!(base.od_capacity_fault(), unity.od_capacity_fault());
            hits += stormy.od_capacity_fault() as u32;
        }
        let rate = f64::from(hits) / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "elevated empirical rate {rate}");
    }

    #[test]
    fn empirical_rate_matches_configuration() {
        let mut cfg = FaultConfig::none();
        cfg.od_capacity_rate = 0.25;
        let mut p = FaultPlan::new(cfg, 3);
        let n = 20_000;
        let hits = (0..n).filter(|_| p.od_capacity_fault()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }
}
