//! Correlated failure storms: zone-scoped episode schedules that modulate
//! fault rates, revoke whole markets at once, and starve capacity.
//!
//! PR 2's [`crate::FaultPlan`] injects *independent* per-operation faults;
//! the regime the paper actually fears is correlated loss — a zone-wide
//! price event revokes every lease in a market simultaneously and the
//! ensuing capacity crunch defeats naive failover. This module adds that
//! regime as a seeded, deterministic **storm schedule**:
//!
//! * a Markov on/off **episode** process per zone (exponential off- and
//!   on-sojourns), optionally *ignited* by the zone-wide price-spike
//!   windows the market generator already shares across markets
//!   ([`spike_coupling`](StormConfig::spike_coupling) — storms observe the
//!   same randomness the prices were built from, so "crunch during the
//!   spike" holds by construction);
//! * **mass-revocation** instants inside episodes, at which every active
//!   lease in the zone's markets is revoked simultaneously;
//! * a **capacity-crunch** probability: while a zone storms, server
//!   requests there (spot and on-demand alike) fail with this probability
//!   on top of ordinary fault draws;
//! * a **fault-rate multiplier** applied to every [`crate::FaultPlan`]
//!   rate while the relevant zone storms;
//! * deterministic **backoff jitter** (thundering-herd dispersal) and a
//!   global **on-demand quota**, consumed by the scheduler/provider.
//!
//! The same two properties `FaultPlan` guarantees hold here:
//!
//! * **Determinism** — every stochastic ingredient draws from its own
//!   named stream derived from the run seed; episode construction and all
//!   query-time draws are pure functions of `(config, seed, spans)`.
//! * **Zero-intensity neutrality** — a schedule built from
//!   [`StormConfig::none`] (or any all-zero config) generates no
//!   episodes, never advances any stream, and leaves every consumer's
//!   behavior bit-identical to having no schedule at all.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use spothost_market::gen::derive_seed;
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::types::Zone;

/// Knobs of the correlated-failure storm model. All-zero (the default,
/// [`StormConfig::none`]) disables everything.
#[derive(Debug, Clone, PartialEq)]
pub struct StormConfig {
    /// Expected spontaneous storm episodes per zone per day (Markov
    /// on/off arrival rate; 0 disables spontaneous episodes).
    pub episodes_per_day: f64,
    /// Mean episode duration (exponential on-sojourn).
    pub mean_episode: SimDuration,
    /// Multiplier applied to every `FaultConfig` rate while the zone
    /// storms (1 = no modulation; capped so effective rates stay <= 1).
    pub fault_multiplier: f64,
    /// Expected mass-revocation events per day *of storm time*: at each,
    /// every active lease in the zone's markets is revoked at once.
    pub mass_revocations_per_day: f64,
    /// P(a server request — spot or on-demand — in a storming zone fails
    /// with `InsufficientCapacity`), on top of ordinary fault draws:
    /// everyone else's correlated recovery drains the zone's pools.
    pub capacity_crunch_rate: f64,
    /// P(a zone-wide price-spike window ignites a storm episode covering
    /// it) — couples storms to the price events already in the traces.
    pub spike_coupling: f64,
    /// Backoff jitter fraction: a reacquire backoff of `b` becomes
    /// `b + b * jitter * U(0,1)`, dispersing the thundering herd a mass
    /// revocation would otherwise synchronise. 0 = no jitter (and no
    /// stream advance).
    pub backoff_jitter: f64,
    /// Global cap on concurrently held on-demand servers (0 = unlimited).
    /// Requests beyond the cap are rejected and must queue behind the
    /// scheduler's backoff — honest backpressure instead of infinite
    /// escalation capacity.
    pub od_quota: u32,
}

impl StormConfig {
    /// No storms (the default): every consumer behaves bit-identically to
    /// a simulation without a schedule.
    pub fn none() -> Self {
        StormConfig {
            episodes_per_day: 0.0,
            mean_episode: SimDuration::hours(1),
            fault_multiplier: 1.0,
            mass_revocations_per_day: 0.0,
            capacity_crunch_rate: 0.0,
            spike_coupling: 0.0,
            backoff_jitter: 0.0,
            od_quota: 0,
        }
    }

    /// One-knob severity scale in `[0, 1]` — the axis the `repro storms`
    /// sweep turns. 0 is exactly [`StormConfig::none`] (plus the default
    /// mean episode); 1 is a hostile market: ~2 episodes/zone/day of ~4 h
    /// mean, 10x fault rates, ~6 mass revocations per storm-day, 90%
    /// crunch rejection and every zone spike igniting an episode.
    pub fn intensity(x: f64) -> Self {
        StormConfig {
            episodes_per_day: 2.0 * x,
            mean_episode: SimDuration::hours(1) + SimDuration::hours(3).mul_f64(x),
            fault_multiplier: 1.0 + 9.0 * x,
            mass_revocations_per_day: 6.0 * x,
            capacity_crunch_rate: 0.9 * x,
            spike_coupling: x,
            backoff_jitter: 0.5 * x,
            od_quota: 0,
        }
    }

    /// True when any storm mechanism can actually fire. Integration
    /// points skip building a [`StormSchedule`] entirely when false.
    pub fn enabled(&self) -> bool {
        self.episodes_per_day > 0.0
            || self.spike_coupling > 0.0
            || self.backoff_jitter > 0.0
            || self.od_quota > 0
    }

    pub fn validate(&self) -> Result<(), String> {
        let nonneg = [
            ("episodes_per_day", self.episodes_per_day),
            ("mass_revocations_per_day", self.mass_revocations_per_day),
        ];
        for (name, r) in nonneg {
            if !(r.is_finite() && r >= 0.0) {
                return Err(format!("{name} must be finite and >= 0, got {r}"));
            }
        }
        let probs = [
            ("capacity_crunch_rate", self.capacity_crunch_rate),
            ("spike_coupling", self.spike_coupling),
            ("backoff_jitter", self.backoff_jitter),
        ];
        for (name, r) in probs {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must lie in [0,1], got {r}"));
            }
        }
        if !(self.fault_multiplier >= 1.0 && self.fault_multiplier.is_finite()) {
            return Err(format!(
                "fault_multiplier must be finite and >= 1, got {}",
                self.fault_multiplier
            ));
        }
        if self.mean_episode == SimDuration::ZERO {
            return Err("mean_episode must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for StormConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// One storm episode: the zone storms over `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormEpisode {
    pub start: SimTime,
    pub end: SimTime,
}

/// A [`StormConfig`] bound to one run's episode timeline and random
/// streams.
///
/// Construction pre-computes, per zone, the merged episode list and the
/// mass-revocation instants inside it; queries against those are pure
/// lookups. The two query-time streams (capacity crunch, backoff jitter)
/// are independent, so the provider and the scheduler can each hold a
/// clone of the schedule and use *disjoint* streams without divergence —
/// the episode timeline in both clones is identical by value.
#[derive(Debug, Clone)]
pub struct StormSchedule {
    cfg: StormConfig,
    episodes: [Vec<StormEpisode>; 4],
    mass_revocations: [Vec<SimTime>; 4],
    crunch: ChaCha12Rng,
    jitter: ChaCha12Rng,
}

impl StormSchedule {
    /// Build the episode timeline for one run. `spike_spans` are the
    /// zone-wide price-spike windows (per [`Zone::index`]) the traces
    /// were generated from — pass empty vectors when coupling is unused.
    /// Panics on an invalid configuration, like [`crate::FaultPlan::new`].
    pub fn new(
        cfg: StormConfig,
        seed: u64,
        horizon: SimDuration,
        spike_spans: &[Vec<(SimTime, SimTime)>; 4],
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid storm config: {e}");
        }
        let end = SimTime::ZERO + horizon;
        let stream = |role: &str, id: u64| ChaCha12Rng::seed_from_u64(derive_seed(seed, role, id));

        let episodes = Zone::ALL.map(|z| {
            let zi = z.index() as u64;
            let mut eps: Vec<StormEpisode> = Vec::new();
            // Spontaneous Markov on/off episodes. Skipped entirely (no
            // stream advance) at rate zero.
            if cfg.episodes_per_day > 0.0 {
                let mut rng = stream("storm-episodes", zi);
                let off_mean = 86_400.0 / cfg.episodes_per_day;
                let on_mean = cfg.mean_episode.as_secs_f64();
                let mut t = SimTime::ZERO;
                loop {
                    t += exp_draw(&mut rng, off_mean);
                    if t >= end {
                        break;
                    }
                    let start = t;
                    t += exp_draw(&mut rng, on_mean).max(SimDuration::secs(60));
                    eps.push(StormEpisode {
                        start,
                        end: t.min(end),
                    });
                }
            }
            // Contagion: a zone price spike ignites an episode covering
            // its window. Skipped entirely at zero coupling.
            if cfg.spike_coupling > 0.0 {
                let mut rng = stream("storm-contagion", zi);
                for &(s, e) in &spike_spans[z.index()] {
                    if s >= end {
                        continue;
                    }
                    let ignite = cfg.spike_coupling >= 1.0 || rng.gen_bool(cfg.spike_coupling);
                    if ignite {
                        eps.push(StormEpisode {
                            start: s,
                            end: e.min(end),
                        });
                    }
                }
            }
            merge_episodes(eps)
        });

        let mass_revocations = Zone::ALL.map(|z| {
            let mut times = Vec::new();
            // Mass revocations arrive inside episodes only; skipped
            // entirely (no stream advance) at rate zero or with no
            // episodes.
            let zone_eps = &episodes[z.index()];
            if cfg.mass_revocations_per_day > 0.0 && !zone_eps.is_empty() {
                let mut rng = stream("storm-mass-revocation", z.index() as u64);
                let mean = 86_400.0 / cfg.mass_revocations_per_day;
                for ep in zone_eps {
                    let mut t = ep.start;
                    loop {
                        t += exp_draw(&mut rng, mean);
                        if t >= ep.end {
                            break;
                        }
                        times.push(t);
                    }
                }
            }
            times
        });

        StormSchedule {
            cfg,
            episodes,
            mass_revocations,
            crunch: stream("storm-crunch", 0),
            jitter: stream("storm-jitter", 0),
        }
    }

    pub fn config(&self) -> &StormConfig {
        &self.cfg
    }

    /// The merged, sorted, non-overlapping episodes of one zone.
    pub fn episodes(&self, zone: Zone) -> &[StormEpisode] {
        &self.episodes[zone.index()]
    }

    /// Is the zone inside a storm episode at `t`?
    pub fn is_storming(&self, zone: Zone, t: SimTime) -> bool {
        self.episode_end(zone, t).is_some()
    }

    /// End of the episode containing `t` in `zone`, if one is in
    /// progress at `t` — a pure lookup, like [`Self::is_storming`].
    pub fn episode_end(&self, zone: Zone, t: SimTime) -> Option<SimTime> {
        let eps = &self.episodes[zone.index()];
        let i = eps.partition_point(|e| e.start <= t);
        (i > 0 && eps[i - 1].end > t).then(|| eps[i - 1].end)
    }

    /// Multiplier on `FaultConfig` rates at `(zone, t)`: the configured
    /// multiplier while storming, 1 otherwise.
    pub fn fault_multiplier(&self, zone: Zone, t: SimTime) -> f64 {
        if self.is_storming(zone, t) {
            self.cfg.fault_multiplier
        } else {
            1.0
        }
    }

    /// The first mass-revocation instant strictly after `after` in this
    /// zone, if any.
    pub fn next_mass_revocation(&self, zone: Zone, after: SimTime) -> Option<SimTime> {
        let times = &self.mass_revocations[zone.index()];
        let i = times.partition_point(|&t| t <= after);
        times.get(i).copied()
    }

    /// Does a server request in `zone` at `t` fail to the capacity
    /// crunch? Draws (and can fire) only while the zone storms with a
    /// positive crunch rate, so a crunch-free schedule never advances the
    /// stream.
    pub fn crunch_fault(&mut self, zone: Zone, t: SimTime) -> bool {
        let r = self.cfg.capacity_crunch_rate;
        if r <= 0.0 || !self.is_storming(zone, t) {
            return false;
        }
        if r >= 1.0 {
            return true;
        }
        self.crunch.gen_bool(r)
    }

    /// Deterministically jitter a backoff delay: `b` becomes
    /// `b + b * jitter * U(0,1)`. At zero jitter the delay is returned
    /// unchanged without advancing the stream.
    pub fn jittered_backoff(&mut self, base: SimDuration) -> SimDuration {
        if self.cfg.backoff_jitter <= 0.0 {
            return base;
        }
        let u: f64 = self.jitter.gen();
        base + base.mul_f64(self.cfg.backoff_jitter * u)
    }

    /// Global on-demand concurrency cap (0 = unlimited).
    pub fn od_quota(&self) -> u32 {
        self.cfg.od_quota
    }
}

/// Exponential draw with the given mean, in seconds, as a duration.
/// (Mirrors the market generator's private `dist::exponential`.)
fn exp_draw(rng: &mut ChaCha12Rng, mean_secs: f64) -> SimDuration {
    let u: f64 = rng.gen();
    SimDuration::secs_f64(-mean_secs * (1.0 - u).ln())
}

/// Sort episodes by start and coalesce overlapping/adjacent ones.
fn merge_episodes(mut eps: Vec<StormEpisode>) -> Vec<StormEpisode> {
    eps.retain(|e| e.end > e.start);
    eps.sort_by_key(|e| (e.start, e.end));
    let mut out: Vec<StormEpisode> = Vec::with_capacity(eps.len());
    for e in eps {
        match out.last_mut() {
            Some(last) if e.start <= last.end => last.end = last.end.max(e.end),
            _ => out.push(e),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_spans() -> [Vec<(SimTime, SimTime)>; 4] {
        [const { Vec::new() }; 4]
    }

    fn horizon() -> SimDuration {
        SimDuration::days(30)
    }

    #[test]
    fn none_is_disabled_and_valid() {
        let c = StormConfig::none();
        assert!(!c.enabled());
        c.validate().unwrap();
        assert_eq!(StormConfig::intensity(0.0), StormConfig::none());
        assert!(StormConfig::intensity(0.5).enabled());
        StormConfig::intensity(1.0).validate().unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut c = StormConfig::none();
        c.capacity_crunch_rate = 1.5;
        assert!(c.validate().is_err());
        let mut c = StormConfig::none();
        c.fault_multiplier = 0.5;
        assert!(c.validate().is_err());
        let mut c = StormConfig::none();
        c.episodes_per_day = -1.0;
        assert!(c.validate().is_err());
        // intensity(x) is only valid for x in [0,1]: beyond that the
        // probability knobs leave their range, caught at validate time.
        assert!(StormConfig::intensity(2.0).validate().is_err());
    }

    #[test]
    fn zero_intensity_generates_nothing_and_never_advances_streams() {
        let mut s = StormSchedule::new(StormConfig::none(), 42, horizon(), &no_spans());
        for &z in &Zone::ALL {
            assert!(s.episodes(z).is_empty());
            assert_eq!(s.next_mass_revocation(z, SimTime::ZERO), None);
            for h in 0..48 {
                let t = SimTime::hours(h);
                assert!(!s.is_storming(z, t));
                assert_eq!(s.fault_multiplier(z, t), 1.0);
                assert!(!s.crunch_fault(z, t));
            }
        }
        let base = SimDuration::secs(60);
        for _ in 0..64 {
            assert_eq!(s.jittered_backoff(base), base);
        }
        // Streams untouched: raising the rates on the used schedule and a
        // fresh one yields identical draw sequences.
        let mut used = s.clone();
        let mut fresh = StormSchedule::new(StormConfig::none(), 42, horizon(), &no_spans());
        used.cfg.backoff_jitter = 0.5;
        fresh.cfg.backoff_jitter = 0.5;
        for _ in 0..64 {
            assert_eq!(used.jittered_backoff(base), fresh.jittered_backoff(base));
        }
    }

    #[test]
    fn episodes_are_deterministic_sorted_and_disjoint() {
        let cfg = StormConfig::intensity(0.7);
        let a = StormSchedule::new(cfg.clone(), 9, horizon(), &no_spans());
        let b = StormSchedule::new(cfg, 9, horizon(), &no_spans());
        let end = SimTime::ZERO + horizon();
        let mut any = false;
        for &z in &Zone::ALL {
            assert_eq!(a.episodes(z), b.episodes(z));
            any |= !a.episodes(z).is_empty();
            let mut prev_end = SimTime::ZERO;
            for e in a.episodes(z) {
                assert!(e.start >= prev_end, "episodes must not overlap");
                assert!(e.end > e.start && e.end <= end);
                prev_end = e.end;
            }
        }
        assert!(any, "intensity 0.7 over 30 days must produce episodes");
    }

    #[test]
    fn is_storming_matches_episode_intervals() {
        let s = StormSchedule::new(StormConfig::intensity(0.8), 3, horizon(), &no_spans());
        let z = Zone::UsEast1a;
        let eps = s.episodes(z);
        assert!(!eps.is_empty());
        for e in eps {
            assert!(s.is_storming(z, e.start));
            assert!(s.is_storming(z, e.start + (e.end - e.start).mul_f64(0.5)));
            assert!(!s.is_storming(z, e.end));
            assert_eq!(s.fault_multiplier(z, e.start), s.cfg.fault_multiplier);
        }
        if eps[0].start > SimTime::ZERO {
            assert!(!s.is_storming(z, SimTime::ZERO));
        }
    }

    #[test]
    fn mass_revocations_land_inside_episodes() {
        let mut cfg = StormConfig::intensity(1.0);
        cfg.mass_revocations_per_day = 24.0; // one an hour of storm time
        let s = StormSchedule::new(cfg, 5, horizon(), &no_spans());
        let mut total = 0;
        for &z in &Zone::ALL {
            let mut after = SimTime::ZERO;
            while let Some(t) = s.next_mass_revocation(z, after) {
                assert!(s.is_storming(z, t), "mass revocation outside episode");
                assert!(t > after);
                after = t;
                total += 1;
            }
        }
        assert!(total > 0, "expected mass revocations at full intensity");
    }

    #[test]
    fn spike_coupling_ignites_episodes_on_spans() {
        let mut cfg = StormConfig::none();
        cfg.spike_coupling = 1.0;
        let mut spans = no_spans();
        spans[Zone::UsWest1a.index()] = vec![
            (SimTime::hours(4), SimTime::hours(5)),
            (SimTime::hours(10), SimTime::hours(11)),
        ];
        let s = StormSchedule::new(cfg, 1, horizon(), &spans);
        let z = Zone::UsWest1a;
        assert_eq!(s.episodes(z).len(), 2);
        assert!(s.is_storming(z, SimTime::hours(4)));
        assert!(!s.is_storming(z, SimTime::hours(7)));
        assert!(s.is_storming(z, SimTime::minutes(630)));
        // Other zones untouched.
        assert!(s.episodes(Zone::UsEast1a).is_empty());
    }

    #[test]
    fn crunch_fires_only_while_storming() {
        let mut cfg = StormConfig::none();
        cfg.spike_coupling = 1.0;
        cfg.capacity_crunch_rate = 1.0;
        let mut spans = no_spans();
        spans[0] = vec![(SimTime::hours(1), SimTime::hours(2))];
        let mut s = StormSchedule::new(cfg, 2, horizon(), &spans);
        assert!(!s.crunch_fault(Zone::UsEast1a, SimTime::minutes(30)));
        assert!(s.crunch_fault(Zone::UsEast1a, SimTime::minutes(90)));
        assert!(!s.crunch_fault(Zone::UsEast1b, SimTime::minutes(90)));
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let mut cfg = StormConfig::none();
        cfg.backoff_jitter = 0.5;
        let mut a = StormSchedule::new(cfg.clone(), 8, horizon(), &no_spans());
        let mut b = StormSchedule::new(cfg, 8, horizon(), &no_spans());
        let base = SimDuration::secs(60);
        for _ in 0..256 {
            let ja = a.jittered_backoff(base);
            assert!(ja >= base && ja <= base + base.mul_f64(0.5), "jitter {ja}");
            assert_eq!(ja, b.jittered_backoff(base));
        }
    }

    #[test]
    fn merge_coalesces_overlaps() {
        let t = SimTime::hours;
        let eps = vec![
            StormEpisode {
                start: t(5),
                end: t(6),
            },
            StormEpisode {
                start: t(1),
                end: t(3),
            },
            StormEpisode {
                start: t(2),
                end: t(4),
            },
            StormEpisode {
                start: t(4),
                end: t(5),
            },
            StormEpisode {
                start: t(9),
                end: t(9),
            }, // empty, dropped
        ];
        let merged = merge_episodes(eps);
        assert_eq!(
            merged,
            vec![StormEpisode {
                start: t(1),
                end: t(6)
            }]
        );
    }
}
