//! LEB128 variable-length integers and zigzag signed mapping — the
//! primitive the columnar format is built from. Timestamps are stored as
//! non-negative deltas (varint); in-variant times are stored as signed
//! deltas from the emission instant (zigzag varint), which keeps
//! "two minutes from now" and "an hour ago" equally tiny.

use crate::ColError;

/// Append `v` as an LEB128 varint (7 bits per byte, high bit = more).
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Append `v` zigzag-mapped (0, -1, 1, -2, ... → 0, 1, 2, 3, ...).
pub fn write_i64(buf: &mut Vec<u8>, v: i64) {
    write_u64(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// A bounds-checked little read cursor over a byte slice.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one raw byte.
    pub fn byte(&mut self) -> Result<u8, ColError> {
        let b = *self.buf.get(self.pos).ok_or(ColError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], ColError> {
        let end = self.pos.checked_add(n).ok_or(ColError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(ColError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Read an LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, ColError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(ColError::Corrupt("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a zigzag varint.
    pub fn i64(&mut self) -> Result<i64, ColError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read a raw little-endian f64 bit pattern (lossless).
    pub fn f64_bits(&mut self) -> Result<f64, ColError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(f64::from_bits(u64::from_le_bytes(a)))
    }
}

/// Append the raw bit pattern of `v` (lossless, `to_bits`-exact).
pub fn write_f64_bits(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_edges() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            write_u64(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &vals {
            assert_eq!(c.u64().unwrap(), v);
        }
        assert!(c.is_empty());
    }

    #[test]
    fn i64_roundtrip_edges() {
        let mut buf = Vec::new();
        let vals = [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX];
        for &v in &vals {
            write_i64(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &vals {
            assert_eq!(c.i64().unwrap(), v);
        }
    }

    #[test]
    fn f64_bits_exact_for_specials() {
        let mut buf = Vec::new();
        let vals = [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE];
        for &v in &vals {
            write_f64_bits(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for &v in &vals {
            assert_eq!(c.f64_bits().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_and_overflow_inputs_error() {
        let mut c = Cursor::new(&[0x80]);
        assert!(c.u64().is_err());
        let mut c = Cursor::new(&[0xff; 11]);
        assert!(c.u64().is_err());
        let mut c = Cursor::new(&[1, 2, 3]);
        assert!(c.f64_bits().is_err());
    }
}
