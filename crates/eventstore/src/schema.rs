//! The per-kind columnar schema: a dense [`EventKind`] discriminant for
//! every `TelemetryEvent` variant, plus the small closed dictionaries
//! (markets, zones, enum codes) column encoding relies on.
//!
//! All code tables here are *stable*: the on-disk format stores these
//! indices, so new variants must be appended, never reordered.

use crate::ColError;
use spothost_cloudsim::{InstanceId, TerminationReason};
use spothost_faults::FaultKind;
use spothost_market::types::{InstanceType, MarketId, Zone};
use spothost_telemetry::{DenialReason, MigrationPhase, SchedulerState, TelemetryEvent};
use spothost_virt::MigrationKind;

/// Dense discriminant of a `TelemetryEvent` variant: the column family an
/// event's fields land in, and the bit position in a block's kind bitmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // variant meanings documented on `TelemetryEvent`
pub enum EventKind {
    BidPlaced,
    LeaseGranted,
    LeaseDenied,
    LeaseActivated,
    ActivationFailed,
    LeaseClosed,
    PriceCrossing,
    RevocationWarning,
    UnwarnedDeath,
    MigrationStarted,
    MigrationPhase,
    MigrationCompleted,
    MigrationAborted,
    Outage,
    Degraded,
    ServiceUp,
    FaultInjected,
    BackoffScheduled,
    StateChange,
    StormStarted,
    StormEnded,
    QuotaExhausted,
    JobStarted,
    JobCheckpointed,
    JobRestarted,
    JobFinished,
}

impl EventKind {
    /// Every kind, in stable column order (= bitmap bit order).
    pub const ALL: [EventKind; 26] = [
        EventKind::BidPlaced,
        EventKind::LeaseGranted,
        EventKind::LeaseDenied,
        EventKind::LeaseActivated,
        EventKind::ActivationFailed,
        EventKind::LeaseClosed,
        EventKind::PriceCrossing,
        EventKind::RevocationWarning,
        EventKind::UnwarnedDeath,
        EventKind::MigrationStarted,
        EventKind::MigrationPhase,
        EventKind::MigrationCompleted,
        EventKind::MigrationAborted,
        EventKind::Outage,
        EventKind::Degraded,
        EventKind::ServiceUp,
        EventKind::FaultInjected,
        EventKind::BackoffScheduled,
        EventKind::StateChange,
        EventKind::StormStarted,
        EventKind::StormEnded,
        EventKind::QuotaExhausted,
        EventKind::JobStarted,
        EventKind::JobCheckpointed,
        EventKind::JobRestarted,
        EventKind::JobFinished,
    ];

    /// The kind of an event.
    pub fn of(ev: &TelemetryEvent) -> EventKind {
        match ev {
            TelemetryEvent::BidPlaced { .. } => EventKind::BidPlaced,
            TelemetryEvent::LeaseGranted { .. } => EventKind::LeaseGranted,
            TelemetryEvent::LeaseDenied { .. } => EventKind::LeaseDenied,
            TelemetryEvent::LeaseActivated { .. } => EventKind::LeaseActivated,
            TelemetryEvent::ActivationFailed { .. } => EventKind::ActivationFailed,
            TelemetryEvent::LeaseClosed { .. } => EventKind::LeaseClosed,
            TelemetryEvent::PriceCrossing { .. } => EventKind::PriceCrossing,
            TelemetryEvent::RevocationWarning { .. } => EventKind::RevocationWarning,
            TelemetryEvent::UnwarnedDeath { .. } => EventKind::UnwarnedDeath,
            TelemetryEvent::MigrationStarted { .. } => EventKind::MigrationStarted,
            TelemetryEvent::MigrationPhase { .. } => EventKind::MigrationPhase,
            TelemetryEvent::MigrationCompleted { .. } => EventKind::MigrationCompleted,
            TelemetryEvent::MigrationAborted { .. } => EventKind::MigrationAborted,
            TelemetryEvent::Outage { .. } => EventKind::Outage,
            TelemetryEvent::Degraded { .. } => EventKind::Degraded,
            TelemetryEvent::ServiceUp { .. } => EventKind::ServiceUp,
            TelemetryEvent::FaultInjected { .. } => EventKind::FaultInjected,
            TelemetryEvent::BackoffScheduled { .. } => EventKind::BackoffScheduled,
            TelemetryEvent::StateChange { .. } => EventKind::StateChange,
            TelemetryEvent::StormStarted { .. } => EventKind::StormStarted,
            TelemetryEvent::StormEnded { .. } => EventKind::StormEnded,
            TelemetryEvent::QuotaExhausted { .. } => EventKind::QuotaExhausted,
            TelemetryEvent::JobStarted { .. } => EventKind::JobStarted,
            TelemetryEvent::JobCheckpointed { .. } => EventKind::JobCheckpointed,
            TelemetryEvent::JobRestarted { .. } => EventKind::JobRestarted,
            TelemetryEvent::JobFinished { .. } => EventKind::JobFinished,
        }
    }

    /// Stable column index in `0..26` (bit position in kind bitmaps).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`EventKind::index`].
    pub fn from_index(i: usize) -> Option<EventKind> {
        EventKind::ALL.get(i).copied()
    }

    /// The same stable snake_case name `TelemetryEvent::name` exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BidPlaced => "bid_placed",
            EventKind::LeaseGranted => "lease_granted",
            EventKind::LeaseDenied => "lease_denied",
            EventKind::LeaseActivated => "lease_activated",
            EventKind::ActivationFailed => "activation_failed",
            EventKind::LeaseClosed => "lease_closed",
            EventKind::PriceCrossing => "price_crossing",
            EventKind::RevocationWarning => "revocation_warning",
            EventKind::UnwarnedDeath => "unwarned_death",
            EventKind::MigrationStarted => "migration_started",
            EventKind::MigrationPhase => "migration_phase",
            EventKind::MigrationCompleted => "migration_completed",
            EventKind::MigrationAborted => "migration_aborted",
            EventKind::Outage => "outage",
            EventKind::Degraded => "degraded",
            EventKind::ServiceUp => "service_up",
            EventKind::FaultInjected => "fault_injected",
            EventKind::BackoffScheduled => "backoff_scheduled",
            EventKind::StateChange => "state_change",
            EventKind::StormStarted => "storm_started",
            EventKind::StormEnded => "storm_ended",
            EventKind::QuotaExhausted => "quota_exhausted",
            EventKind::JobStarted => "job_started",
            EventKind::JobCheckpointed => "job_checkpointed",
            EventKind::JobRestarted => "job_restarted",
            EventKind::JobFinished => "job_finished",
        }
    }

    /// Parse the snake_case export name (CLI `--kind` values).
    pub fn parse(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Dictionary code of a market: its dense index in `0..16`.
pub fn market_code(m: MarketId) -> u8 {
    m.dense_index() as u8
}

/// Inverse of [`market_code`].
pub fn market_from_code(c: u8) -> Result<MarketId, ColError> {
    let zones = Zone::ALL.len() as u8;
    let types = InstanceType::ALL.len() as u8;
    if c >= zones * types {
        return Err(ColError::Corrupt("market code out of range"));
    }
    Ok(MarketId::new(
        Zone::ALL[(c / types) as usize],
        InstanceType::ALL[(c % types) as usize],
    ))
}

/// Dictionary code of a zone.
pub fn zone_code(z: Zone) -> u8 {
    z.index() as u8
}

/// Inverse of [`zone_code`].
pub fn zone_from_code(c: u8) -> Result<Zone, ColError> {
    Zone::ALL
        .get(c as usize)
        .copied()
        .ok_or(ColError::Corrupt("zone code out of range"))
}

pub(crate) fn termination_code(r: TerminationReason) -> u8 {
    match r {
        TerminationReason::Revoked => 0,
        TerminationReason::Voluntary => 1,
        TerminationReason::FailedAllocation => 2,
    }
}

pub(crate) fn termination_from_code(c: u8) -> Result<TerminationReason, ColError> {
    Ok(match c {
        0 => TerminationReason::Revoked,
        1 => TerminationReason::Voluntary,
        2 => TerminationReason::FailedAllocation,
        _ => return Err(ColError::Corrupt("termination code out of range")),
    })
}

pub(crate) fn denial_code(r: DenialReason) -> u8 {
    match r {
        DenialReason::UnknownMarket => 0,
        DenialReason::BidBelowPrice => 1,
        DenialReason::BidAboveCap => 2,
        DenialReason::InsufficientCapacity => 3,
        DenialReason::QuotaExhausted => 4,
    }
}

pub(crate) fn denial_from_code(c: u8) -> Result<DenialReason, ColError> {
    Ok(match c {
        0 => DenialReason::UnknownMarket,
        1 => DenialReason::BidBelowPrice,
        2 => DenialReason::BidAboveCap,
        3 => DenialReason::InsufficientCapacity,
        4 => DenialReason::QuotaExhausted,
        _ => return Err(ColError::Corrupt("denial code out of range")),
    })
}

pub(crate) fn phase_code(p: MigrationPhase) -> u8 {
    match p {
        MigrationPhase::Prepare => 0,
        MigrationPhase::LivePrecopy => 1,
        MigrationPhase::CkptFlush => 2,
        MigrationPhase::Restore => 3,
        MigrationPhase::LazyFaultIn => 4,
    }
}

pub(crate) fn phase_from_code(c: u8) -> Result<MigrationPhase, ColError> {
    Ok(match c {
        0 => MigrationPhase::Prepare,
        1 => MigrationPhase::LivePrecopy,
        2 => MigrationPhase::CkptFlush,
        3 => MigrationPhase::Restore,
        4 => MigrationPhase::LazyFaultIn,
        _ => return Err(ColError::Corrupt("phase code out of range")),
    })
}

pub(crate) fn state_code(s: SchedulerState) -> u8 {
    match s {
        SchedulerState::Boot => 0,
        SchedulerState::Active => 1,
        SchedulerState::Migrating => 2,
        SchedulerState::Evacuating => 3,
        SchedulerState::DownWaiting => 4,
        SchedulerState::Restoring => 5,
        SchedulerState::Reacquiring => 6,
    }
}

pub(crate) fn state_from_code(c: u8) -> Result<SchedulerState, ColError> {
    Ok(match c {
        0 => SchedulerState::Boot,
        1 => SchedulerState::Active,
        2 => SchedulerState::Migrating,
        3 => SchedulerState::Evacuating,
        4 => SchedulerState::DownWaiting,
        5 => SchedulerState::Restoring,
        6 => SchedulerState::Reacquiring,
        _ => return Err(ColError::Corrupt("state code out of range")),
    })
}

pub(crate) fn fault_code(k: FaultKind) -> u8 {
    match k {
        FaultKind::SpotCapacity => 0,
        FaultKind::OdCapacity => 1,
        FaultKind::StartupFailure => 2,
        FaultKind::WarningMiss => 3,
        FaultKind::WarningDelay => 4,
        FaultKind::VolumeDelay => 5,
        FaultKind::CkptWriteFail => 6,
        FaultKind::LiveAbort => 7,
        FaultKind::LazyStorm => 8,
    }
}

pub(crate) fn fault_from_code(c: u8) -> Result<FaultKind, ColError> {
    Ok(match c {
        0 => FaultKind::SpotCapacity,
        1 => FaultKind::OdCapacity,
        2 => FaultKind::StartupFailure,
        3 => FaultKind::WarningMiss,
        4 => FaultKind::WarningDelay,
        5 => FaultKind::VolumeDelay,
        6 => FaultKind::CkptWriteFail,
        7 => FaultKind::LiveAbort,
        8 => FaultKind::LazyStorm,
        _ => return Err(ColError::Corrupt("fault code out of range")),
    })
}

pub(crate) fn migkind_code(k: MigrationKind) -> u8 {
    match k {
        MigrationKind::Forced => 0,
        MigrationKind::Planned => 1,
        MigrationKind::Reverse => 2,
    }
}

pub(crate) fn migkind_from_code(c: u8) -> Result<MigrationKind, ColError> {
    Ok(match c {
        0 => MigrationKind::Forced,
        1 => MigrationKind::Planned,
        2 => MigrationKind::Reverse,
        _ => return Err(ColError::Corrupt("migration kind code out of range")),
    })
}

/// The market fields an event carries (`from`/`to` both count), for block
/// bitmap construction and market predicates.
pub fn markets_of(ev: &TelemetryEvent) -> (Option<MarketId>, Option<MarketId>) {
    match ev {
        TelemetryEvent::BidPlaced { market, .. }
        | TelemetryEvent::LeaseGranted { market, .. }
        | TelemetryEvent::LeaseDenied { market, .. }
        | TelemetryEvent::LeaseActivated { market, .. }
        | TelemetryEvent::ActivationFailed { market, .. }
        | TelemetryEvent::LeaseClosed { market, .. }
        | TelemetryEvent::PriceCrossing { market, .. }
        | TelemetryEvent::RevocationWarning { market, .. }
        | TelemetryEvent::UnwarnedDeath { market, .. }
        | TelemetryEvent::ServiceUp { market, .. }
        | TelemetryEvent::QuotaExhausted { market }
        | TelemetryEvent::JobStarted { market, .. }
        | TelemetryEvent::JobRestarted { market, .. } => (Some(*market), None),
        TelemetryEvent::MigrationStarted { from, to, .. }
        | TelemetryEvent::MigrationCompleted { from, to, .. } => (Some(*from), Some(*to)),
        TelemetryEvent::MigrationAborted { from, .. } => (Some(*from), None),
        TelemetryEvent::MigrationPhase { .. }
        | TelemetryEvent::Outage { .. }
        | TelemetryEvent::Degraded { .. }
        | TelemetryEvent::FaultInjected { .. }
        | TelemetryEvent::BackoffScheduled { .. }
        | TelemetryEvent::StateChange { .. }
        | TelemetryEvent::StormStarted { .. }
        | TelemetryEvent::StormEnded { .. }
        | TelemetryEvent::JobCheckpointed { .. }
        | TelemetryEvent::JobFinished { .. } => (None, None),
    }
}

/// The zones an event touches: zones of its market fields, or the storm
/// zone for storm events.
pub fn zones_of(ev: &TelemetryEvent) -> (Option<Zone>, Option<Zone>) {
    match ev {
        TelemetryEvent::StormStarted { zone } | TelemetryEvent::StormEnded { zone } => {
            (Some(*zone), None)
        }
        _ => {
            let (a, b) = markets_of(ev);
            (a.map(|m| m.zone), b.map(|m| m.zone))
        }
    }
}

/// The instance id an event references, if any (dictionary building).
pub fn instance_of(ev: &TelemetryEvent) -> Option<InstanceId> {
    match ev {
        TelemetryEvent::LeaseGranted { id, .. }
        | TelemetryEvent::LeaseActivated { id, .. }
        | TelemetryEvent::ActivationFailed { id, .. }
        | TelemetryEvent::LeaseClosed { id, .. }
        | TelemetryEvent::PriceCrossing { id, .. }
        | TelemetryEvent::RevocationWarning { id, .. }
        | TelemetryEvent::UnwarnedDeath { id, .. }
        | TelemetryEvent::ServiceUp { id, .. } => Some(*id),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_dense_and_stable() {
        for (i, k) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(EventKind::from_index(i), Some(k));
            assert_eq!(EventKind::parse(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_index(EventKind::ALL.len()), None);
        assert_eq!(EventKind::parse("nope"), None);
    }

    #[test]
    fn kind_names_match_event_names() {
        let ev = TelemetryEvent::StormStarted {
            zone: Zone::UsEast1a,
        };
        assert_eq!(EventKind::of(&ev).name(), ev.name());
        assert_eq!(EventKind::of(&ev), EventKind::StormStarted);
    }

    #[test]
    fn market_codes_roundtrip_all_sixteen() {
        for m in MarketId::all() {
            assert_eq!(market_from_code(market_code(m)).unwrap(), m);
        }
        assert!(market_from_code(16).is_err());
    }

    #[test]
    fn enum_codes_roundtrip() {
        for z in Zone::ALL {
            assert_eq!(zone_from_code(zone_code(z)).unwrap(), z);
        }
        for c in 0..3 {
            assert_eq!(termination_code(termination_from_code(c).unwrap()), c);
            assert_eq!(migkind_code(migkind_from_code(c).unwrap()), c);
        }
        for c in 0..5 {
            assert_eq!(denial_code(denial_from_code(c).unwrap()), c);
            assert_eq!(phase_code(phase_from_code(c).unwrap()), c);
        }
        for c in 0..7 {
            assert_eq!(state_code(state_from_code(c).unwrap()), c);
        }
        for c in 0..9 {
            assert_eq!(fault_code(fault_from_code(c).unwrap()), c);
        }
        assert!(zone_from_code(4).is_err());
        assert!(state_from_code(7).is_err());
    }
}
