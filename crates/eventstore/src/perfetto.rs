//! Chrome-trace ("Perfetto") JSON export: render a selection as a trace
//! viewable in `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Layout: one *process* per VM stream (`vm0`, `vm1`, ... — or a single
//! `run` process for untagged single-run stores), each with four fixed
//! threads:
//!
//! | tid | track      | spans |
//! |-----|------------|-------|
//! | 1   | leases     | one `X` span per `LeaseClosed`, `start..end` |
//! | 2   | service    | `Outage` / `Degraded` intervals |
//! | 3   | migrations | `MigrationStarted` paired with the stream's next `Completed`/`Aborted` |
//! | 4   | marks      | instants: faults, backoffs, warnings, deaths, storms, quota |
//!
//! Timestamps are simulated time: `ts`/`dur` are in microseconds with
//! sim-start at 0, so a 60-day run reads as a 60-day trace.
//!
//! The writer is hand-rolled JSON (the workspace is offline, no serde),
//! matching the repo's `telemetry::export` idiom.

use crate::read::StoredEvent;
use spothost_telemetry::TelemetryEvent;
use std::collections::BTreeMap;
use std::fmt::Write as _;

const TID_LEASES: u32 = 1;
const TID_SERVICE: u32 = 2;
const TID_MIGRATIONS: u32 = 3;
const TID_MARKS: u32 = 4;

/// Escape a string for a JSON string literal. Track names come from
/// closed vocabularies today, but the escaper keeps the output valid if
/// that ever changes.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ms: u64) -> u64 {
    ms.saturating_mul(1_000)
}

/// Same strings `telemetry::export` uses for the JSONL/CSV exporters.
fn termination_name(r: spothost_cloudsim::TerminationReason) -> &'static str {
    use spothost_cloudsim::TerminationReason as TR;
    match r {
        TR::Revoked => "revoked",
        TR::Voluntary => "voluntary",
        TR::FailedAllocation => "failed-allocation",
    }
}

struct TraceWriter {
    out: String,
    first: bool,
}

impl TraceWriter {
    fn new() -> Self {
        TraceWriter {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn raw(&mut self, line: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(line);
    }

    /// A complete-span (`X`) event.
    fn span(&mut self, pid: u32, tid: u32, name: &str, ts_us: u64, dur_us: u64, args: &str) {
        self.raw(&format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"ts\":{ts_us},\"dur\":{dur_us},\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    /// An instant (`i`) event, thread-scoped.
    fn instant(&mut self, pid: u32, tid: u32, name: &str, ts_us: u64, args: &str) {
        self.raw(&format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{}\",\"ts\":{ts_us},\"s\":\"t\",\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    /// A process/thread-name metadata (`M`) event.
    fn meta(&mut self, pid: u32, tid: Option<u32>, key: &str, name: &str) {
        let tid_part = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
        self.raw(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},{tid_part}\"name\":\"{key}\",\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

fn process_id(vm: Option<u32>) -> u32 {
    match vm {
        None => 1,
        Some(v) => v + 2,
    }
}

/// Render `events` (any order; grouped internally by VM stream, order
/// preserved within a stream) as Chrome-trace JSON.
pub fn to_perfetto_json(events: &[StoredEvent]) -> String {
    let mut streams: BTreeMap<u32, Vec<&StoredEvent>> = BTreeMap::new();
    for se in events {
        streams.entry(process_id(se.vm)).or_default().push(se);
    }

    let mut w = TraceWriter::new();
    for (&pid, stream) in &streams {
        let pname = match stream.first().and_then(|se| se.vm) {
            Some(v) => format!("vm{v}"),
            None => "run".to_string(),
        };
        w.meta(pid, None, "process_name", &pname);
        w.meta(pid, Some(TID_LEASES), "thread_name", "leases");
        w.meta(pid, Some(TID_SERVICE), "thread_name", "service");
        w.meta(pid, Some(TID_MIGRATIONS), "thread_name", "migrations");
        w.meta(pid, Some(TID_MARKS), "thread_name", "marks");

        // An open migration waiting for its Completed/Aborted partner.
        let mut open_mig: Option<(u64, String)> = None;

        for se in stream {
            let at = se.at.as_millis();
            match &se.event {
                TelemetryEvent::LeaseClosed {
                    id,
                    market,
                    spot,
                    reason,
                    start,
                    end,
                    cost,
                } => {
                    let dur = end.as_millis().saturating_sub(start.as_millis());
                    w.span(
                        pid,
                        TID_LEASES,
                        &format!("{market}"),
                        us(start.as_millis()),
                        us(dur),
                        &format!(
                            "\"instance\":\"{id}\",\"spot\":{spot},\"reason\":\"{}\",\"cost\":{cost:.6}",
                            termination_name(*reason)
                        ),
                    );
                }
                TelemetryEvent::Outage { start, end } => {
                    let dur = end.as_millis().saturating_sub(start.as_millis());
                    w.span(
                        pid,
                        TID_SERVICE,
                        "outage",
                        us(start.as_millis()),
                        us(dur),
                        "",
                    );
                }
                TelemetryEvent::Degraded { start, end } => {
                    let dur = end.as_millis().saturating_sub(start.as_millis());
                    w.span(
                        pid,
                        TID_SERVICE,
                        "degraded",
                        us(start.as_millis()),
                        us(dur),
                        "",
                    );
                }
                TelemetryEvent::MigrationStarted { kind, from, to } => {
                    open_mig = Some((at, format!("{} {from} -> {to}", kind.name())));
                }
                TelemetryEvent::MigrationCompleted { downtime, .. } => {
                    if let Some((start, name)) = open_mig.take() {
                        w.span(
                            pid,
                            TID_MIGRATIONS,
                            &name,
                            us(start),
                            us(at.saturating_sub(start)),
                            &format!("\"downtime_ms\":{}", downtime.as_millis()),
                        );
                    }
                }
                TelemetryEvent::MigrationAborted { .. } => {
                    if let Some((start, name)) = open_mig.take() {
                        w.span(
                            pid,
                            TID_MIGRATIONS,
                            &format!("{name} (aborted)"),
                            us(start),
                            us(at.saturating_sub(start)),
                            "",
                        );
                    }
                }
                TelemetryEvent::FaultInjected { kind } => {
                    w.instant(
                        pid,
                        TID_MARKS,
                        &format!("fault:{}", kind.name()),
                        us(at),
                        "",
                    );
                }
                TelemetryEvent::BackoffScheduled { attempt, until } => {
                    w.instant(
                        pid,
                        TID_MARKS,
                        &format!("backoff#{attempt}"),
                        us(at),
                        &format!("\"until_ms\":{}", until.as_millis()),
                    );
                }
                TelemetryEvent::RevocationWarning { market, .. } => {
                    w.instant(pid, TID_MARKS, &format!("warning {market}"), us(at), "");
                }
                TelemetryEvent::UnwarnedDeath { market, .. } => {
                    w.instant(
                        pid,
                        TID_MARKS,
                        &format!("unwarned death {market}"),
                        us(at),
                        "",
                    );
                }
                TelemetryEvent::StormStarted { zone } => {
                    w.instant(
                        pid,
                        TID_MARKS,
                        &format!("storm start {}", zone.name()),
                        us(at),
                        "",
                    );
                }
                TelemetryEvent::StormEnded { zone } => {
                    w.instant(
                        pid,
                        TID_MARKS,
                        &format!("storm end {}", zone.name()),
                        us(at),
                        "",
                    );
                }
                TelemetryEvent::QuotaExhausted { market } => {
                    w.instant(pid, TID_MARKS, &format!("quota {market}"), us(at), "");
                }
                // Granted/activated/bids/denials/phases/state changes are
                // high-frequency detail; the lease and migration spans
                // already tell the visual story, so they stay out of the
                // trace to keep it loadable at fleet scale.
                _ => {}
            }
        }
        if let Some((start, name)) = open_mig.take() {
            w.instant(
                pid,
                TID_MIGRATIONS,
                &format!("{name} (unfinished)"),
                us(start),
                "",
            );
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_cloudsim::{InstanceId, TerminationReason};
    use spothost_market::time::{SimDuration, SimTime};
    use spothost_market::types::{InstanceType, MarketId, Zone};
    use spothost_virt::MigrationKind;

    fn se(vm: Option<u32>, at_ms: u64, event: TelemetryEvent) -> StoredEvent {
        StoredEvent {
            vm,
            at: SimTime::millis(at_ms),
            event,
        }
    }

    #[test]
    fn export_builds_tracks_per_vm() {
        let m = MarketId::new(Zone::UsEast1a, InstanceType::Large);
        let m2 = MarketId::new(Zone::UsWest1a, InstanceType::Large);
        let events = vec![
            se(
                Some(0),
                3_600_000,
                TelemetryEvent::LeaseClosed {
                    id: InstanceId(1),
                    market: m,
                    spot: true,
                    reason: TerminationReason::Revoked,
                    start: SimTime::ZERO,
                    end: SimTime::hours(1),
                    cost: 0.1,
                },
            ),
            se(
                Some(0),
                3_600_000,
                TelemetryEvent::MigrationStarted {
                    kind: MigrationKind::Forced,
                    from: m,
                    to: m2,
                },
            ),
            se(
                Some(0),
                3_660_000,
                TelemetryEvent::MigrationCompleted {
                    kind: MigrationKind::Forced,
                    from: m,
                    to: m2,
                    downtime: SimDuration::secs(30),
                    degraded: SimDuration::ZERO,
                },
            ),
            se(
                Some(1),
                10_000,
                TelemetryEvent::Outage {
                    start: SimTime::ZERO,
                    end: SimTime::secs(10),
                },
            ),
            se(
                Some(1),
                20_000,
                TelemetryEvent::StormStarted {
                    zone: Zone::UsEast1a,
                },
            ),
        ];
        let json = to_perfetto_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"vm0\""));
        assert!(json.contains("\"vm1\""));
        assert!(json.contains("forced us-east-1a/large -> us-west-1a/large"));
        assert!(json.contains("\"dur\":3600000000")); // 1h lease in µs
        assert!(json.contains("\"outage\""));
        assert!(json.contains("storm start us-east-1a"));
        // Balanced braces: crude but effective structural check for the
        // hand-rolled writer.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn untagged_stream_exports_as_single_run_process() {
        let events = vec![se(
            None,
            1_000,
            TelemetryEvent::FaultInjected {
                kind: spothost_faults::FaultKind::SpotCapacity,
            },
        )];
        let json = to_perfetto_json(&events);
        assert!(json.contains("\"run\""));
        assert!(json.contains("fault:spot-capacity"));
    }

    #[test]
    fn escapes_are_valid_json() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
