//! The write path: a [`ColumnarStore`] owns the output stream (file or
//! memory) and hands out per-VM [`ColumnarSink`]s that buffer events and
//! seal them into columnar blocks.
//!
//! The store is single-threaded by design — the simulators step VMs
//! sequentially — so sinks share the store through `Rc<RefCell<..>>`.
//! I/O errors are latched (like `Recorder`): emission never panics or
//! returns errors into the hot path; [`ColumnarStore::finish`] reports
//! the first failure at the end.

use crate::block;
use spothost_market::time::SimTime;
use spothost_telemetry::{Sink, SinkFactory, TelemetryEvent, TimedEvent};
use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

/// File magic: first 8 bytes of every columnar store file.
pub const MAGIC: &[u8; 8] = b"SPOTCOL1";

/// Default events buffered per sink before a block is sealed.
///
/// 4096 events keeps blocks small enough that a time-range predicate
/// prunes usefully on day-scale runs, while amortising the per-block
/// header and dictionary to well under a byte per event.
pub const DEFAULT_BLOCK_EVENTS: usize = 4096;

enum Output {
    Writer(Box<dyn Write>),
    Memory(Vec<u8>),
}

struct StoreInner {
    out: Output,
    wrote_magic: bool,
    blocks: u64,
    events: u64,
    io_error: Option<io::Error>,
}

impl StoreInner {
    fn write_block(&mut self, payload: &[u8], count: usize) {
        if payload.is_empty() || self.io_error.is_some() {
            return;
        }
        self.blocks += 1;
        self.events += count as u64;
        let mut frame = Vec::with_capacity(payload.len() + 12);
        if !self.wrote_magic {
            frame.extend_from_slice(MAGIC);
            self.wrote_magic = true;
        }
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        match &mut self.out {
            Output::Memory(buf) => buf.extend_from_slice(&frame),
            Output::Writer(w) => {
                if let Err(e) = w.write_all(&frame) {
                    self.io_error = Some(e);
                }
            }
        }
    }
}

/// A columnar event store: the shared owner of one output stream.
///
/// Create one per run (file-backed via [`ColumnarStore::create`], or
/// [`ColumnarStore::in_memory`] for tests), then obtain sinks with
/// [`ColumnarStore::sink`] / [`ColumnarStore::sink_for_vm`] — or pass the
/// store itself as a [`SinkFactory`] to `fleet::sim`, which tags each
/// VM's stream with its spawn index. Call [`ColumnarStore::finish`] after
/// all sinks are dropped to flush and surface any latched I/O error.
///
/// `Clone` produces another handle to the *same* output stream (the store
/// is `Rc`-shared), so a caller can hand a clone to a simulator as the
/// sink factory and keep its own handle for [`ColumnarStore::finish`] /
/// [`ColumnarStore::bytes`] afterwards.
#[derive(Clone)]
pub struct ColumnarStore {
    inner: Rc<RefCell<StoreInner>>,
    block_events: usize,
}

impl std::fmt::Debug for ColumnarStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("ColumnarStore")
            .field("blocks", &inner.blocks)
            .field("events", &inner.events)
            .field("block_events", &self.block_events)
            .finish()
    }
}

impl ColumnarStore {
    fn with_output(out: Output) -> Self {
        ColumnarStore {
            inner: Rc::new(RefCell::new(StoreInner {
                out,
                wrote_magic: false,
                blocks: 0,
                events: 0,
                io_error: None,
            })),
            block_events: DEFAULT_BLOCK_EVENTS,
        }
    }

    /// A store that accumulates the encoded file in memory.
    pub fn in_memory() -> Self {
        ColumnarStore::with_output(Output::Memory(Vec::new()))
    }

    /// A store writing to an arbitrary `Write` impl.
    pub fn to_writer(w: Box<dyn Write>) -> Self {
        ColumnarStore::with_output(Output::Writer(w))
    }

    /// A store writing a `.col` file at `path` (buffered).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let f = File::create(path)?;
        Ok(ColumnarStore::to_writer(Box::new(BufWriter::new(f))))
    }

    /// Override the events-per-block threshold (mainly for tests, where a
    /// small value forces multi-block files).
    pub fn with_block_events(mut self, n: usize) -> Self {
        self.block_events = n.max(1);
        self
    }

    /// A sink for an untagged (single-run) stream.
    pub fn sink(&self) -> ColumnarSink {
        self.tagged_sink(None)
    }

    /// A sink whose blocks are tagged with fleet VM index `vm`.
    pub fn sink_for_vm(&self, vm: u32) -> ColumnarSink {
        self.tagged_sink(Some(vm))
    }

    fn tagged_sink(&self, vm: Option<u32>) -> ColumnarSink {
        ColumnarSink {
            inner: Rc::clone(&self.inner),
            vm,
            buf: Vec::with_capacity(self.block_events),
            block_events: self.block_events,
        }
    }

    /// Blocks sealed so far.
    pub fn blocks_written(&self) -> u64 {
        self.inner.borrow().blocks
    }

    /// Events sealed so far (events still buffered in live sinks are not
    /// counted until their block seals).
    pub fn events_written(&self) -> u64 {
        self.inner.borrow().events
    }

    /// Flush the output and report the first latched I/O error, if any.
    ///
    /// Call after every sink has been dropped (sinks seal their partial
    /// block on drop); blocks sealed later are still appended but won't
    /// be flushed by this call.
    pub fn finish(&self) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        if let Some(e) = inner.io_error.take() {
            return Err(e);
        }
        match &mut inner.out {
            Output::Writer(w) => w.flush(),
            Output::Memory(_) => Ok(()),
        }
    }

    /// The encoded bytes of an in-memory store (empty for writer-backed
    /// stores). Clones; intended for tests and small runs.
    pub fn bytes(&self) -> Vec<u8> {
        match &self.inner.borrow().out {
            Output::Memory(buf) => buf.clone(),
            Output::Writer(_) => Vec::new(),
        }
    }
}

/// Handing the store to `FleetSim` tags each spawned VM's stream with its
/// spawn index, so per-VM queries and Perfetto tracks survive the merge
/// into one file.
impl SinkFactory for ColumnarStore {
    type Sink = ColumnarSink;

    fn make(&mut self, idx: u32) -> ColumnarSink {
        self.sink_for_vm(idx)
    }
}

/// A telemetry [`Sink`] that buffers events and seals them into columnar
/// blocks in its parent [`ColumnarStore`].
///
/// Dropping the sink seals any partial block, so simply letting a
/// `SimRun` finish guarantees a complete file.
pub struct ColumnarSink {
    inner: Rc<RefCell<StoreInner>>,
    vm: Option<u32>,
    buf: Vec<TimedEvent>,
    block_events: usize,
}

impl std::fmt::Debug for ColumnarSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarSink")
            .field("vm", &self.vm)
            .field("buffered", &self.buf.len())
            .finish()
    }
}

impl ColumnarSink {
    fn seal(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let payload = block::seal(self.vm, &self.buf);
        self.inner
            .borrow_mut()
            .write_block(&payload, self.buf.len());
        self.buf.clear();
    }
}

impl Sink for ColumnarSink {
    const ENABLED: bool = true;

    fn emit(&mut self, at: SimTime, event: TelemetryEvent) {
        self.buf.push((at, event));
        if self.buf.len() >= self.block_events {
            self.seal();
        }
    }
}

impl Drop for ColumnarSink {
    fn drop(&mut self) {
        self.seal();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::ColReader;
    use spothost_market::types::{InstanceType, MarketId, Zone};

    fn ev(i: u64) -> TimedEvent {
        (
            SimTime::millis(i * 100),
            TelemetryEvent::QuotaExhausted {
                market: MarketId::new(Zone::UsEast1a, InstanceType::Small),
            },
        )
    }

    #[test]
    fn sinks_seal_on_capacity_and_on_drop() {
        let store = ColumnarStore::in_memory().with_block_events(4);
        {
            let mut sink = store.sink();
            for i in 0..10 {
                let (t, e) = ev(i);
                sink.emit(t, e);
            }
            assert_eq!(store.blocks_written(), 2); // 2 full blocks of 4
        }
        assert_eq!(store.blocks_written(), 3); // partial block of 2 on drop
        assert_eq!(store.events_written(), 10);
        store.finish().unwrap();

        let reader = ColReader::from_bytes(&store.bytes()).unwrap();
        assert_eq!(reader.block_count(), 3);
        assert_eq!(reader.event_count(), 10);
    }

    #[test]
    fn file_starts_with_magic() {
        let store = ColumnarStore::in_memory();
        {
            let mut sink = store.sink_for_vm(3);
            let (t, e) = ev(0);
            sink.emit(t, e);
        }
        let bytes = store.bytes();
        assert_eq!(&bytes[..8], MAGIC);
    }

    #[test]
    fn empty_store_yields_empty_file() {
        let store = ColumnarStore::in_memory();
        {
            let _sink = store.sink();
        }
        assert!(store.bytes().is_empty());
        assert_eq!(store.blocks_written(), 0);
    }
}
