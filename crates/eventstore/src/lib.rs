//! # spothost-eventstore
//!
//! Columnar telemetry storage, an aggregation query layer, and Perfetto
//! export for fleet-scale `spothost` runs.
//!
//! JSONL traces (`Recorder` + `export::event_to_json`) are perfect for a
//! single run but melt at fleet scale: a 50-VM, 60-day fleet simulation
//! emits millions of events, and a text row per event is ~100 bytes of
//! repeated key names. This crate stores the same stream losslessly in
//! roughly an order of magnitude less space, and — more importantly —
//! answers aggregate questions (p99 time-to-reacquire by zone, cost sums
//! by market) *without decoding most of the file*.
//!
//! ## Architecture
//!
//! ```text
//!  SimRun/FleetSim --Sink--> ColumnarSink --seal--> ColumnarStore --> .col file
//!                                                        |
//!  ColReader::open <-------------------------------------+
//!      |-- select(Predicate)  block pruning via header zone maps
//!      |-- Query aggregations  counts / sums / histograms / percentiles
//!      `-- perfetto::to_perfetto_json  chrome://tracing / ui.perfetto.dev
//! ```
//!
//! * [`ColumnarStore`] owns the output (file or memory) and hands out
//!   per-VM [`ColumnarSink`]s; each sink buffers events and seals them
//!   into struct-of-arrays blocks ([`block`]) of ~4096 events.
//! * Every block header carries min/max time plus kind/market/zone
//!   bitmaps, so [`ColReader::select`] can skip whole blocks that cannot
//!   match a [`Predicate`] — the [`Selection`] reports how many blocks
//!   were actually decoded.
//! * [`query`] computes aggregations over a selection, reusing
//!   `spothost-analysis` percentile/histogram machinery so CLI numbers
//!   match report numbers bit for bit.
//! * [`perfetto`] renders a selection as a Chrome-trace JSON file, one
//!   process per VM with lease / service / migration tracks.
//!
//! The encoding is lossless: decode ∘ encode is the identity on the
//! event stream, with `f64` fields preserved `to_bits`-exact (NaN
//! included). Property tests in `tests/columnar_properties.rs` hold this
//! line.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod block;
pub mod perfetto;
pub mod query;
pub mod read;
pub mod schema;
pub mod store;
mod varint;

pub use block::BlockMeta;
pub use query::{Field, GroupBy, Predicate};
pub use read::{ColReader, Selection, StoredEvent};
pub use schema::EventKind;
pub use store::{ColumnarSink, ColumnarStore, DEFAULT_BLOCK_EVENTS, MAGIC};

/// Errors from decoding a columnar file.
#[derive(Debug)]
pub enum ColError {
    /// The input ended mid-structure.
    Truncated,
    /// The input is structurally invalid; the message names the field.
    Corrupt(&'static str),
    /// The file does not start with the `SPOTCOL1` magic.
    BadMagic,
    /// An underlying I/O error (opening or reading the file).
    Io(std::io::Error),
}

impl std::fmt::Display for ColError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColError::Truncated => write!(f, "columnar input truncated"),
            ColError::Corrupt(what) => write!(f, "columnar input corrupt: {what}"),
            ColError::BadMagic => write!(f, "not a spothost columnar file (bad magic)"),
            ColError::Io(e) => write!(f, "columnar i/o error: {e}"),
        }
    }
}

impl std::error::Error for ColError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ColError {
    fn from(e: std::io::Error) -> Self {
        ColError::Io(e)
    }
}
