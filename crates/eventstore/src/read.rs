//! The read path: [`ColReader`] parses a columnar file into raw blocks
//! (headers eagerly, payloads lazily) and serves predicate-filtered
//! selections, decoding only the blocks whose header zone maps survive
//! pruning.

use crate::block::{self, BlockMeta};
use crate::query::Predicate;
use crate::store::MAGIC;
use crate::ColError;
use spothost_market::time::SimTime;
use spothost_telemetry::TelemetryEvent;
use std::path::Path;

/// One decoded event with its stream tag.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEvent {
    /// Fleet VM (spawn index) the event came from; `None` for untagged
    /// single-run streams.
    pub vm: Option<u32>,
    /// Emission time.
    pub at: SimTime,
    /// The event itself.
    pub event: TelemetryEvent,
}

struct RawBlock {
    meta: BlockMeta,
    payload: Vec<u8>,
}

/// The result of [`ColReader::select`]: matching events plus pruning
/// statistics, so callers (and tests) can see how much of the file the
/// predicate actually touched.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Events matching the predicate, in file order (per-VM streams stay
    /// in emission order; different VMs interleave by seal time).
    pub events: Vec<StoredEvent>,
    /// Total blocks in the file.
    pub blocks_total: usize,
    /// Blocks that survived header pruning and were decoded.
    pub blocks_decoded: usize,
}

/// A reader over one columnar store file.
pub struct ColReader {
    blocks: Vec<RawBlock>,
}

impl std::fmt::Debug for ColReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColReader")
            .field("blocks", &self.blocks.len())
            .field("events", &self.event_count())
            .finish()
    }
}

impl ColReader {
    /// Parse a columnar file from bytes. Headers are decoded up front
    /// (they are a few dozen bytes per block); column payloads stay raw
    /// until a predicate needs them.
    ///
    /// An empty input is a valid, empty store (a run that emitted no
    /// events writes no bytes).
    pub fn from_bytes(data: &[u8]) -> Result<Self, ColError> {
        if data.is_empty() {
            return Ok(ColReader { blocks: Vec::new() });
        }
        if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
            return Err(ColError::BadMagic);
        }
        let mut rest = &data[MAGIC.len()..];
        let mut blocks = Vec::new();
        while !rest.is_empty() {
            if rest.len() < 4 {
                return Err(ColError::Truncated);
            }
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&rest[..4]);
            let len = u32::from_le_bytes(len4) as usize;
            rest = &rest[4..];
            if rest.len() < len {
                return Err(ColError::Truncated);
            }
            let payload = rest[..len].to_vec();
            rest = &rest[len..];
            let meta = block::decode_meta(&payload)?;
            blocks.push(RawBlock { meta, payload });
        }
        Ok(ColReader { blocks })
    }

    /// Open and parse a `.col` file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ColError> {
        let data = std::fs::read(path)?;
        ColReader::from_bytes(&data)
    }

    /// Number of blocks in the file.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total events across all blocks (from headers; no decoding).
    pub fn event_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.meta.count as u64).sum()
    }

    /// Block headers, in file order (for `--stats`-style output).
    pub fn metas(&self) -> impl Iterator<Item = &BlockMeta> {
        self.blocks.iter().map(|b| &b.meta)
    }

    /// Distinct VM tags present, sorted, `None` first if present.
    pub fn vms(&self) -> Vec<Option<u32>> {
        let mut vms: Vec<Option<u32>> = self.blocks.iter().map(|b| b.meta.vm).collect();
        vms.sort_unstable();
        vms.dedup();
        vms
    }

    /// Decode every block and return the full stream (no filtering).
    pub fn decode_all(&self) -> Result<Vec<StoredEvent>, ColError> {
        Ok(self.select(&Predicate::any())?.events)
    }

    /// Evaluate `pred`: prune blocks on their headers, decode survivors,
    /// then filter events. The returned [`Selection`] reports how many
    /// blocks were decoded vs. total — the pruning win.
    pub fn select(&self, pred: &Predicate) -> Result<Selection, ColError> {
        let mut events = Vec::new();
        let mut decoded = 0usize;
        for raw in &self.blocks {
            if !pred.matches_meta(&raw.meta) {
                continue;
            }
            decoded += 1;
            let (meta, stream) = block::decode(&raw.payload)?;
            if meta != raw.meta {
                return Err(ColError::Corrupt("block body disagrees with header"));
            }
            for (at, event) in stream {
                let se = StoredEvent {
                    vm: meta.vm,
                    at,
                    event,
                };
                if pred.matches_event(&se) {
                    events.push(se);
                }
            }
        }
        Ok(Selection {
            events,
            blocks_total: self.blocks.len(),
            blocks_decoded: decoded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ColumnarStore;
    use crate::EventKind;
    use spothost_market::time::SimDuration;
    use spothost_market::types::{InstanceType, MarketId, Zone};
    use spothost_telemetry::Sink;

    fn write_two_vm_store() -> Vec<u8> {
        let store = ColumnarStore::in_memory().with_block_events(8);
        for vm in 0..2u32 {
            let mut sink = store.sink_for_vm(vm);
            for i in 0..20u64 {
                sink.emit(
                    SimTime::millis(i * 60_000),
                    TelemetryEvent::QuotaExhausted {
                        market: MarketId::new(Zone::ALL[vm as usize], InstanceType::Large),
                    },
                );
            }
        }
        store.bytes()
    }

    #[test]
    fn select_prunes_blocks_on_time_range() {
        let reader = ColReader::from_bytes(&write_two_vm_store()).unwrap();
        assert_eq!(reader.block_count(), 6); // 2 VMs × (2 full + 1 partial)

        // A range covering only the first block's window of each VM.
        let pred = Predicate::any().with_time_range(SimTime::ZERO, SimTime::millis(7 * 60_000));
        let sel = reader.select(&pred).unwrap();
        assert_eq!(sel.blocks_total, 6);
        assert!(sel.blocks_decoded < sel.blocks_total);
        assert_eq!(sel.events.len(), 16); // 8 per VM
    }

    #[test]
    fn select_prunes_blocks_on_zone_and_vm() {
        let reader = ColReader::from_bytes(&write_two_vm_store()).unwrap();
        let pred = Predicate::any().with_zone(Zone::ALL[1]);
        let sel = reader.select(&pred).unwrap();
        assert_eq!(sel.blocks_decoded, 3);
        assert_eq!(sel.events.len(), 20);
        assert!(sel.events.iter().all(|e| e.vm == Some(1)));

        let sel = reader.select(&Predicate::any().with_vm(0)).unwrap();
        assert_eq!(sel.blocks_decoded, 3);
        assert!(sel.events.iter().all(|e| e.vm == Some(0)));
    }

    #[test]
    fn select_filters_events_within_blocks() {
        let store = ColumnarStore::in_memory();
        {
            let mut sink = store.sink();
            sink.emit(
                SimTime::millis(1),
                TelemetryEvent::MigrationPhase {
                    phase: spothost_telemetry::MigrationPhase::Prepare,
                    duration: SimDuration::millis(5),
                },
            );
            sink.emit(
                SimTime::millis(2),
                TelemetryEvent::StormStarted {
                    zone: Zone::UsEast1a,
                },
            );
        }
        let reader = ColReader::from_bytes(&store.bytes()).unwrap();
        let sel = reader
            .select(&Predicate::any().with_kind(EventKind::StormStarted))
            .unwrap();
        assert_eq!(sel.blocks_decoded, 1);
        assert_eq!(sel.events.len(), 1);
        assert_eq!(EventKind::of(&sel.events[0].event), EventKind::StormStarted);
    }

    #[test]
    fn bad_magic_and_truncation_error() {
        assert!(matches!(
            ColReader::from_bytes(b"NOTSPOT!rest"),
            Err(ColError::BadMagic)
        ));
        let bytes = write_two_vm_store();
        assert!(ColReader::from_bytes(&bytes[..bytes.len() - 2]).is_err());
        assert!(ColReader::from_bytes(&[]).unwrap().block_count() == 0);
    }
}
