//! Predicates and aggregations over a columnar selection.
//!
//! A [`Predicate`] is evaluated in two stages: [`Predicate::matches_meta`]
//! prunes whole blocks using only header zone maps (time window, kind /
//! market / zone bitmaps, VM tag), then [`Predicate::matches_event`]
//! filters the events of the blocks that had to be decoded. The split is
//! what makes narrow queries cheap on fleet-scale files.
//!
//! Aggregations ([`group_counts`], [`grouped_values`], [`percentile_of`],
//! [`histogram_of`]) reuse `spothost-analysis` so the numbers the query
//! CLI prints are bit-identical to what a report computed from the raw
//! stream would say — a property the crate's proptests pin down.

use crate::block::BlockMeta;
use crate::read::StoredEvent;
use crate::schema::{market_code, markets_of, zone_code, zones_of, EventKind};
use spothost_analysis::{percentile, FixedHistogram};
use spothost_market::time::SimTime;
use spothost_market::types::{MarketId, Zone};
use spothost_telemetry::TelemetryEvent;
use std::collections::BTreeMap;

/// A conjunctive filter over stored events.
///
/// All constraints are ANDed; each unset constraint matches everything.
/// Kind/market/zone constraints accumulate (two `with_kind` calls match
/// either kind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    from_ms: u64,
    to_ms: u64,
    kinds: Option<u32>,
    markets: Option<u16>,
    zones: Option<u8>,
    vm: Option<u32>,
}

impl Default for Predicate {
    fn default() -> Self {
        Predicate::any()
    }
}

impl Predicate {
    /// The match-everything predicate.
    pub fn any() -> Self {
        Predicate {
            from_ms: 0,
            to_ms: u64::MAX,
            kinds: None,
            markets: None,
            zones: None,
            vm: None,
        }
    }

    /// Restrict to emission times in `[from, to]` (inclusive).
    pub fn with_time_range(mut self, from: SimTime, to: SimTime) -> Self {
        self.from_ms = from.as_millis();
        self.to_ms = to.as_millis();
        self
    }

    /// Also match events of `kind`.
    pub fn with_kind(mut self, kind: EventKind) -> Self {
        *self.kinds.get_or_insert(0) |= 1 << kind.index();
        self
    }

    /// Also match events referencing `market` (migrations match on either
    /// endpoint).
    pub fn with_market(mut self, market: MarketId) -> Self {
        *self.markets.get_or_insert(0) |= 1 << market_code(market);
        self
    }

    /// Also match events touching `zone`.
    pub fn with_zone(mut self, zone: Zone) -> Self {
        *self.zones.get_or_insert(0) |= 1 << zone_code(zone);
        self
    }

    /// Restrict to the stream of fleet VM `vm` (spawn index). Untagged
    /// single-run streams never match a VM constraint.
    pub fn with_vm(mut self, vm: u32) -> Self {
        self.vm = Some(vm);
        self
    }

    /// Can any event in a block with this header match? Used for pruning;
    /// must never return `false` for a block containing a matching event.
    pub fn matches_meta(&self, meta: &BlockMeta) -> bool {
        if meta.max_t_ms < self.from_ms || meta.min_t_ms > self.to_ms {
            return false;
        }
        if let Some(k) = self.kinds {
            if meta.kinds & k == 0 {
                return false;
            }
        }
        if let Some(m) = self.markets {
            if meta.markets & m == 0 {
                return false;
            }
        }
        if let Some(z) = self.zones {
            if meta.zones & z == 0 {
                return false;
            }
        }
        if let Some(vm) = self.vm {
            if meta.vm != Some(vm) {
                return false;
            }
        }
        true
    }

    /// Exact per-event filter, applied after a block is decoded.
    pub fn matches_event(&self, se: &StoredEvent) -> bool {
        let t = se.at.as_millis();
        if t < self.from_ms || t > self.to_ms {
            return false;
        }
        if let Some(k) = self.kinds {
            if k & (1 << EventKind::of(&se.event).index()) == 0 {
                return false;
            }
        }
        if let Some(m) = self.markets {
            let (a, b) = markets_of(&se.event);
            let hit = [a, b]
                .into_iter()
                .flatten()
                .any(|mk| m & (1 << market_code(mk)) != 0);
            if !hit {
                return false;
            }
        }
        if let Some(z) = self.zones {
            let (a, b) = zones_of(&se.event);
            let hit = [a, b]
                .into_iter()
                .flatten()
                .any(|zn| z & (1 << zone_code(zn)) != 0);
            if !hit {
                return false;
            }
        }
        if let Some(vm) = self.vm {
            if se.vm != Some(vm) {
                return false;
            }
        }
        true
    }
}

/// A numeric observable extracted from single events, for sums, means,
/// percentiles and histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// `LeaseClosed.cost`: dollars spent on the lease.
    Cost,
    /// `BidPlaced.bid`: the bid price, when one was placed.
    Bid,
    /// `BidPlaced.predicted_risk`: the policy's revocation-risk estimate.
    Risk,
    /// `LeaseClosed`: lease length `end - start` in hours.
    LeaseHours,
    /// `Outage`: outage length in seconds.
    OutageSeconds,
    /// `Degraded`: degraded-interval length in seconds.
    DegradedSeconds,
    /// `MigrationCompleted.downtime` in seconds.
    MigrationDowntimeSeconds,
    /// `MigrationCompleted.degraded` in seconds.
    MigrationDegradedSeconds,
    /// `MigrationPhase.duration` in seconds.
    PhaseSeconds,
    /// `BackoffScheduled.attempt`: the retry attempt number.
    BackoffAttempt,
}

impl Field {
    /// Every field, for CLI help text.
    pub const ALL: [Field; 10] = [
        Field::Cost,
        Field::Bid,
        Field::Risk,
        Field::LeaseHours,
        Field::OutageSeconds,
        Field::DegradedSeconds,
        Field::MigrationDowntimeSeconds,
        Field::MigrationDegradedSeconds,
        Field::PhaseSeconds,
        Field::BackoffAttempt,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Field::Cost => "cost",
            Field::Bid => "bid",
            Field::Risk => "risk",
            Field::LeaseHours => "lease_hours",
            Field::OutageSeconds => "outage_s",
            Field::DegradedSeconds => "degraded_s",
            Field::MigrationDowntimeSeconds => "mig_downtime_s",
            Field::MigrationDegradedSeconds => "mig_degraded_s",
            Field::PhaseSeconds => "phase_s",
            Field::BackoffAttempt => "backoff_attempt",
        }
    }

    /// Parse a CLI `--field` value.
    pub fn parse(name: &str) -> Option<Field> {
        Field::ALL.into_iter().find(|f| f.name() == name)
    }

    /// The field's value for one event, if the event carries it.
    pub fn extract(self, ev: &TelemetryEvent) -> Option<f64> {
        match (self, ev) {
            (Field::Cost, TelemetryEvent::LeaseClosed { cost, .. })
            | (Field::Cost, TelemetryEvent::JobFinished { cost, .. }) => Some(*cost),
            (Field::Bid, TelemetryEvent::BidPlaced { bid, .. }) => *bid,
            (Field::Risk, TelemetryEvent::BidPlaced { predicted_risk, .. }) => *predicted_risk,
            (Field::LeaseHours, TelemetryEvent::LeaseClosed { start, end, .. }) => {
                Some((end.as_millis().saturating_sub(start.as_millis())) as f64 / 3_600_000.0)
            }
            (Field::OutageSeconds, TelemetryEvent::Outage { start, end })
            | (Field::DegradedSeconds, TelemetryEvent::Degraded { start, end }) => {
                Some((end.as_millis().saturating_sub(start.as_millis())) as f64 / 1_000.0)
            }
            (
                Field::MigrationDowntimeSeconds,
                TelemetryEvent::MigrationCompleted { downtime, .. },
            ) => Some(downtime.as_millis() as f64 / 1_000.0),
            (
                Field::MigrationDegradedSeconds,
                TelemetryEvent::MigrationCompleted { degraded, .. },
            ) => Some(degraded.as_millis() as f64 / 1_000.0),
            (Field::PhaseSeconds, TelemetryEvent::MigrationPhase { duration, .. }) => {
                Some(duration.as_millis() as f64 / 1_000.0)
            }
            (Field::BackoffAttempt, TelemetryEvent::BackoffScheduled { attempt, .. }) => {
                Some(f64::from(*attempt))
            }
            _ => None,
        }
    }
}

/// The grouping dimension of an aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupBy {
    /// One group holding everything.
    #[default]
    None,
    /// Group by event kind.
    Kind,
    /// Group by (primary) market.
    Market,
    /// Group by (primary) zone.
    Zone,
    /// Group by fleet VM tag.
    Vm,
}

impl GroupBy {
    /// Parse a CLI `--group-by` value.
    pub fn parse(name: &str) -> Option<GroupBy> {
        match name {
            "none" => Some(GroupBy::None),
            "kind" => Some(GroupBy::Kind),
            "market" => Some(GroupBy::Market),
            "zone" => Some(GroupBy::Zone),
            "vm" => Some(GroupBy::Vm),
            _ => None,
        }
    }

    /// The group key of one event. Events without the dimension (e.g. a
    /// `StateChange` grouped by market) land in `"-"`.
    pub fn key(self, se: &StoredEvent) -> String {
        match self {
            GroupBy::None => "all".to_string(),
            GroupBy::Kind => EventKind::of(&se.event).name().to_string(),
            GroupBy::Market => match markets_of(&se.event).0 {
                Some(m) => m.to_string(),
                None => "-".to_string(),
            },
            GroupBy::Zone => match zones_of(&se.event).0 {
                Some(z) => z.name().to_string(),
                None => "-".to_string(),
            },
            GroupBy::Vm => match se.vm {
                Some(v) => format!("vm{v}"),
                None => "-".to_string(),
            },
        }
    }
}

/// Event counts per group, sorted by key.
pub fn group_counts(events: &[StoredEvent], group: GroupBy) -> Vec<(String, u64)> {
    let mut map: BTreeMap<String, u64> = BTreeMap::new();
    for se in events {
        *map.entry(group.key(se)).or_insert(0) += 1;
    }
    map.into_iter().collect()
}

/// Per-group samples of `field`, sorted by key. Events that don't carry
/// the field contribute nothing (and create no group).
pub fn grouped_values(
    events: &[StoredEvent],
    field: Field,
    group: GroupBy,
) -> Vec<(String, Vec<f64>)> {
    let mut map: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for se in events {
        if let Some(v) = field.extract(&se.event) {
            map.entry(group.key(se)).or_default().push(v);
        }
    }
    map.into_iter().collect()
}

/// Percentile of a sample (delegates to `spothost-analysis`, so query
/// results match report numbers exactly).
pub fn percentile_of(values: &[f64], p: f64) -> f64 {
    percentile(values, p)
}

/// A `buckets`-bucket linear histogram spanning the sample's own min/max
/// (degenerate samples get a unit-width bucket).
pub fn histogram_of(values: &[f64], buckets: usize) -> FixedHistogram {
    let n = buckets.max(1);
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let (lo, hi) = if finite.is_empty() {
        (0.0, 1.0)
    } else if lo == hi {
        (lo, lo + 1.0)
    } else {
        (lo, hi)
    };
    // Samples near the f64 extremes can defeat linear bucketing: the span
    // may overflow to infinity, or edge increments may round away
    // (`f64::MAX + 1.0 == f64::MAX`). Validate the edge ladder and fall
    // back to a unit range — out-of-range samples are still counted, in
    // the under/overflow buckets.
    let w = (hi - lo) / n as f64;
    let edges: Vec<f64> = (0..=n).map(|i| lo + w * i as f64).collect();
    let usable = w.is_finite() && edges.windows(2).all(|e| e[0] < e[1]);
    let mut h = if usable {
        FixedHistogram::new(edges)
    } else {
        FixedHistogram::linear(0.0, 1.0, n)
    };
    for v in values {
        h.record(*v);
    }
    h
}

/// Time-to-reacquire episodes, the paper's headline recovery metric,
/// derived from the raw stream: per VM stream, the first
/// `BackoffScheduled` after a loss opens an episode and the next
/// `LeaseGranted` closes it. Returns `(zone of the granted market,
/// seconds from first backoff to grant)` per episode, in stream order.
pub fn reacquire_seconds(events: &[StoredEvent]) -> Vec<(Zone, f64)> {
    let mut open: BTreeMap<Option<u32>, u64> = BTreeMap::new();
    let mut out = Vec::new();
    for se in events {
        match &se.event {
            TelemetryEvent::BackoffScheduled { .. } => {
                open.entry(se.vm).or_insert_with(|| se.at.as_millis());
            }
            TelemetryEvent::LeaseGranted { market, .. } => {
                if let Some(start) = open.remove(&se.vm) {
                    let secs = se.at.as_millis().saturating_sub(start) as f64 / 1_000.0;
                    out.push((market.zone, secs));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_cloudsim::InstanceId;
    use spothost_market::types::InstanceType;

    fn se(vm: Option<u32>, at_ms: u64, event: TelemetryEvent) -> StoredEvent {
        StoredEvent {
            vm,
            at: SimTime::millis(at_ms),
            event,
        }
    }

    fn grant(zone: Zone) -> TelemetryEvent {
        TelemetryEvent::LeaseGranted {
            id: InstanceId(1),
            market: MarketId::new(zone, InstanceType::Large),
            spot: true,
            ready_at: SimTime::ZERO,
        }
    }

    #[test]
    fn predicate_event_filters_compose() {
        let e = se(Some(2), 5_000, grant(Zone::UsEast1b));
        assert!(Predicate::any().matches_event(&e));
        assert!(Predicate::any()
            .with_kind(EventKind::LeaseGranted)
            .with_zone(Zone::UsEast1b)
            .with_vm(2)
            .matches_event(&e));
        assert!(!Predicate::any().with_vm(1).matches_event(&e));
        assert!(!Predicate::any()
            .with_kind(EventKind::Outage)
            .matches_event(&e));
        assert!(!Predicate::any()
            .with_time_range(SimTime::millis(6_000), SimTime::MAX)
            .matches_event(&e));
        // Two with_kind calls match either kind.
        assert!(Predicate::any()
            .with_kind(EventKind::Outage)
            .with_kind(EventKind::LeaseGranted)
            .matches_event(&e));
    }

    #[test]
    fn field_extraction_and_grouping() {
        let events = vec![
            se(
                None,
                0,
                TelemetryEvent::LeaseClosed {
                    id: InstanceId(1),
                    market: MarketId::new(Zone::UsEast1a, InstanceType::Large),
                    spot: true,
                    reason: spothost_cloudsim::TerminationReason::Revoked,
                    start: SimTime::ZERO,
                    end: SimTime::hours(2),
                    cost: 0.5,
                },
            ),
            se(
                None,
                1,
                TelemetryEvent::LeaseClosed {
                    id: InstanceId(2),
                    market: MarketId::new(Zone::UsWest1a, InstanceType::Large),
                    spot: false,
                    reason: spothost_cloudsim::TerminationReason::Voluntary,
                    start: SimTime::ZERO,
                    end: SimTime::hours(1),
                    cost: 0.25,
                },
            ),
        ];
        let by_zone = grouped_values(&events, Field::Cost, GroupBy::Zone);
        assert_eq!(by_zone.len(), 2);
        let total: f64 = by_zone.iter().flat_map(|(_, v)| v).sum();
        assert!((total - 0.75).abs() < 1e-12);
        let hours = grouped_values(&events, Field::LeaseHours, GroupBy::None);
        assert_eq!(hours[0].1, vec![2.0, 1.0]);
        assert_eq!(group_counts(&events, GroupBy::Kind)[0].1, 2);
    }

    #[test]
    fn reacquire_pairs_backoff_with_next_grant_per_vm() {
        let events = vec![
            se(
                Some(0),
                1_000,
                TelemetryEvent::BackoffScheduled {
                    attempt: 0,
                    until: SimTime::millis(2_000),
                },
            ),
            // Second backoff of the same episode must not reset the start.
            se(
                Some(0),
                3_000,
                TelemetryEvent::BackoffScheduled {
                    attempt: 1,
                    until: SimTime::millis(5_000),
                },
            ),
            // Interleaved other-VM episode.
            se(
                Some(1),
                4_000,
                TelemetryEvent::BackoffScheduled {
                    attempt: 0,
                    until: SimTime::millis(5_000),
                },
            ),
            se(Some(0), 11_000, grant(Zone::UsEast1a)),
            se(Some(1), 5_000, grant(Zone::EuWest1a)),
            // Grant without open episode: ignored.
            se(Some(0), 12_000, grant(Zone::UsEast1a)),
        ];
        let eps = reacquire_seconds(&events);
        assert_eq!(eps, vec![(Zone::UsEast1a, 10.0), (Zone::EuWest1a, 1.0)]);
    }

    #[test]
    fn histogram_and_percentile_handle_edge_samples() {
        let h = histogram_of(&[], 4);
        assert_eq!(h.count(), 0);
        let h = histogram_of(&[3.0, 3.0], 4);
        assert_eq!(h.count(), 2);
        let h = histogram_of(&[0.0, 1.0, 2.0, 10.0], 5);
        assert_eq!(h.count(), 4);
        assert_eq!(percentile_of(&[1.0, 2.0, 3.0, 4.0], 50.0), 2.5);
    }
}
