//! Sealed-block encoding: a run of [`TimedEvent`]s becomes one
//! self-contained binary block of per-kind struct-of-arrays columns.
//!
//! Layout of one block payload (everything varint/LEB128 unless noted):
//!
//! ```text
//! header   vm+1 (0 = untagged) · count · min_t · max_t-min_t
//!          kind bitmap (u32) · market bitmap (u16) · zone bitmap (u8)
//! dict     n_ids · instance id × n_ids            (first-use order)
//! kinds    count raw bytes, one kind index per event in stream order
//! columns  for each kind present, ascending index:
//!            column byte length · column payload
//! ```
//!
//! A column payload is field-major (struct-of-arrays): first the kind's
//! timestamps as deltas chained from `min_t` (monotone streams make these
//! tiny), then each variant field as its own array — dictionary refs for
//! instance ids, dense u8 codes for markets/zones/enums, zigzag deltas
//! *from the emission instant* for in-variant times, plain varints for
//! durations, and raw little-endian bit patterns for `f64`s (bit-exact
//! round-trip, NaN included).
//!
//! Decode reverses every step: per-kind columns are rebuilt into typed
//! events, then the kinds stream re-interleaves them into the original
//! stream order. `decode` ∘ `seal` is the identity on any event stream
//! (proptest-guarded in `tests/columnar_properties.rs`), with f64 fields
//! compared by `to_bits`.

use crate::schema::{
    denial_code, denial_from_code, fault_code, fault_from_code, instance_of, market_code,
    market_from_code, markets_of, migkind_code, migkind_from_code, phase_code, phase_from_code,
    state_code, state_from_code, termination_code, termination_from_code, zone_code,
    zone_from_code, zones_of, EventKind,
};
use crate::varint::{write_f64_bits, write_i64, write_u64, Cursor};
use crate::ColError;
use spothost_cloudsim::InstanceId;
use spothost_market::time::{SimDuration, SimTime};
use spothost_telemetry::{TelemetryEvent, TimedEvent};
use std::collections::HashMap;

/// Parsed block header: everything predicate pruning needs, decodable
/// without touching the dictionary or columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Stream tag: which fleet VM (spawn index) emitted this block, or
    /// `None` for an untagged single-run stream.
    pub vm: Option<u32>,
    /// Events in the block.
    pub count: usize,
    /// Smallest emission timestamp in the block, ms.
    pub min_t_ms: u64,
    /// Largest emission timestamp in the block, ms.
    pub max_t_ms: u64,
    /// Bit `EventKind::index()` set iff the block holds that kind.
    pub kinds: u32,
    /// Bit `MarketId::dense_index()` set iff some event references it.
    pub markets: u16,
    /// Bit `Zone::index()` set iff some event touches the zone.
    pub zones: u8,
}

/// Encode `events` (one sink's buffered run, in emission order) into a
/// block payload. Empty input yields an empty payload (callers skip it).
pub fn seal(vm: Option<u32>, events: &[TimedEvent]) -> Vec<u8> {
    if events.is_empty() {
        return Vec::new();
    }
    let mut min_t = u64::MAX;
    let mut max_t = 0u64;
    let mut kinds_bm = 0u32;
    let mut markets_bm = 0u16;
    let mut zones_bm = 0u8;
    let mut dict_ids: Vec<u64> = Vec::new();
    let mut dict_refs: HashMap<u64, u32> = HashMap::new();
    for (t, ev) in events {
        min_t = min_t.min(t.as_millis());
        max_t = max_t.max(t.as_millis());
        kinds_bm |= 1 << EventKind::of(ev).index();
        let (m1, m2) = markets_of(ev);
        for m in [m1, m2].into_iter().flatten() {
            markets_bm |= 1 << market_code(m);
        }
        let (z1, z2) = zones_of(ev);
        for z in [z1, z2].into_iter().flatten() {
            zones_bm |= 1 << zone_code(z);
        }
        if let Some(id) = instance_of(ev) {
            dict_refs.entry(id.0).or_insert_with(|| {
                dict_ids.push(id.0);
                (dict_ids.len() - 1) as u32
            });
        }
    }

    let mut buf = Vec::with_capacity(events.len() * 8);
    // Header.
    write_u64(&mut buf, vm.map(|v| u64::from(v) + 1).unwrap_or(0));
    write_u64(&mut buf, events.len() as u64);
    write_u64(&mut buf, min_t);
    write_u64(&mut buf, max_t - min_t);
    write_u64(&mut buf, u64::from(kinds_bm));
    write_u64(&mut buf, u64::from(markets_bm));
    write_u64(&mut buf, u64::from(zones_bm));
    // Instance-id dictionary, first-use order.
    write_u64(&mut buf, dict_ids.len() as u64);
    for id in &dict_ids {
        write_u64(&mut buf, *id);
    }
    // Kind stream.
    for (_, ev) in events {
        buf.push(EventKind::of(ev).index() as u8);
    }
    // Per-kind columns.
    let mut col = Vec::new();
    for kind in EventKind::ALL {
        if kinds_bm & (1 << kind.index()) == 0 {
            continue;
        }
        col.clear();
        let evs: Vec<&TimedEvent> = events
            .iter()
            .filter(|(_, ev)| EventKind::of(ev) == kind)
            .collect();
        encode_column(&mut col, kind, &evs, min_t, &dict_refs);
        write_u64(&mut buf, col.len() as u64);
        buf.extend_from_slice(&col);
    }
    buf
}

/// Parse only the header of a block payload (for pruning).
pub fn decode_meta(payload: &[u8]) -> Result<BlockMeta, ColError> {
    let mut c = Cursor::new(payload);
    read_meta(&mut c)
}

fn read_meta(c: &mut Cursor<'_>) -> Result<BlockMeta, ColError> {
    let vm_tag = c.u64()?;
    let vm = if vm_tag == 0 {
        None
    } else {
        Some(u32::try_from(vm_tag - 1).map_err(|_| ColError::Corrupt("vm tag overflows u32"))?)
    };
    let count = usize::try_from(c.u64()?).map_err(|_| ColError::Corrupt("count overflow"))?;
    let min_t_ms = c.u64()?;
    let span = c.u64()?;
    let max_t_ms = min_t_ms
        .checked_add(span)
        .ok_or(ColError::Corrupt("time span overflow"))?;
    let kinds = u32::try_from(c.u64()?).map_err(|_| ColError::Corrupt("kind bitmap overflow"))?;
    if kinds >> EventKind::ALL.len() != 0 {
        return Err(ColError::Corrupt("kind bitmap has unknown bits"));
    }
    let markets =
        u16::try_from(c.u64()?).map_err(|_| ColError::Corrupt("market bitmap overflow"))?;
    let zones = u8::try_from(c.u64()?).map_err(|_| ColError::Corrupt("zone bitmap overflow"))?;
    Ok(BlockMeta {
        vm,
        count,
        min_t_ms,
        max_t_ms,
        kinds,
        markets,
        zones,
    })
}

/// Decode a full block payload back into its event stream (and meta).
pub fn decode(payload: &[u8]) -> Result<(BlockMeta, Vec<TimedEvent>), ColError> {
    let mut c = Cursor::new(payload);
    let meta = read_meta(&mut c)?;
    // The kind stream alone is `count` raw bytes, so a count exceeding
    // the payload length is corrupt; checking here also bounds every
    // `with_capacity` below by the actual input size.
    if meta.count > payload.len() {
        return Err(ColError::Corrupt("count exceeds payload size"));
    }
    // Dictionary.
    let n_ids = usize::try_from(c.u64()?).map_err(|_| ColError::Corrupt("dict overflow"))?;
    if n_ids > meta.count {
        return Err(ColError::Corrupt("dict larger than block"));
    }
    let mut dict = Vec::with_capacity(n_ids);
    for _ in 0..n_ids {
        dict.push(c.u64()?);
    }
    // Kind stream.
    let kind_bytes = c.bytes(meta.count)?;
    let mut kinds = Vec::with_capacity(meta.count);
    let mut counts = [0usize; 26];
    for &b in kind_bytes {
        let k = EventKind::from_index(b as usize)
            .ok_or(ColError::Corrupt("kind stream has unknown kind"))?;
        if meta.kinds & (1 << k.index()) == 0 {
            return Err(ColError::Corrupt("kind stream disagrees with bitmap"));
        }
        counts[k.index()] += 1;
        kinds.push(k);
    }
    // Columns, per present kind.
    let mut per_kind: [Vec<TimedEvent>; 26] = Default::default();
    for kind in EventKind::ALL {
        if meta.kinds & (1 << kind.index()) == 0 {
            continue;
        }
        let n = counts[kind.index()];
        if n == 0 {
            return Err(ColError::Corrupt("bitmap kind missing from stream"));
        }
        let len = usize::try_from(c.u64()?).map_err(|_| ColError::Corrupt("column overflow"))?;
        let col = c.bytes(len)?;
        let mut cc = Cursor::new(col);
        per_kind[kind.index()] = decode_column(&mut cc, kind, n, meta.min_t_ms, &dict)?;
        if !cc.is_empty() {
            return Err(ColError::Corrupt("column has trailing bytes"));
        }
    }
    if !c.is_empty() {
        return Err(ColError::Corrupt("block has trailing bytes"));
    }
    // Re-interleave into stream order.
    let mut next = [0usize; 26];
    let mut out = Vec::with_capacity(meta.count);
    for k in kinds {
        let i = next[k.index()];
        next[k.index()] += 1;
        out.push(per_kind[k.index()][i]);
    }
    Ok((meta, out))
}

// ---- column codecs -------------------------------------------------------

/// Emission-relative time: lossless over the full u64 range (wrapping),
/// tiny for the near-past/near-future times variants actually carry.
fn t_delta(buf: &mut Vec<u8>, field: SimTime, at: SimTime) {
    write_i64(buf, field.as_millis().wrapping_sub(at.as_millis()) as i64);
}

fn read_t_delta(c: &mut Cursor<'_>, at_ms: u64) -> Result<SimTime, ColError> {
    Ok(SimTime(at_ms.wrapping_add(c.i64()? as u64)))
}

fn read_vec<T>(
    c: &mut Cursor<'_>,
    n: usize,
    mut f: impl FnMut(&mut Cursor<'_>) -> Result<T, ColError>,
) -> Result<Vec<T>, ColError> {
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(f(c)?);
    }
    Ok(v)
}

fn dict_id(dict: &[u64], r: u64) -> Result<InstanceId, ColError> {
    let i = usize::try_from(r).map_err(|_| ColError::Corrupt("dict ref overflow"))?;
    dict.get(i)
        .map(|&id| InstanceId(id))
        .ok_or(ColError::Corrupt("dict ref out of range"))
}

/// Encode the timestamps column: deltas chained from `min_t`.
fn encode_ts(buf: &mut Vec<u8>, evs: &[&TimedEvent], min_t: u64) {
    let mut prev = min_t;
    for (t, _) in evs.iter().copied() {
        let ms = t.as_millis();
        write_u64(buf, ms.wrapping_sub(prev));
        prev = ms;
    }
}

fn decode_ts(c: &mut Cursor<'_>, n: usize, min_t: u64) -> Result<Vec<u64>, ColError> {
    let mut prev = min_t;
    read_vec(c, n, |c| {
        prev = prev.wrapping_add(c.u64()?);
        Ok(prev)
    })
}

/// One `Option<f64>` column: a presence byte per row, then the bit
/// patterns of the present values.
fn encode_opt_f64(buf: &mut Vec<u8>, vals: &[Option<f64>]) {
    for v in vals {
        buf.push(u8::from(v.is_some()));
    }
    for v in vals.iter().flatten() {
        write_f64_bits(buf, *v);
    }
}

fn decode_opt_f64(c: &mut Cursor<'_>, n: usize) -> Result<Vec<Option<f64>>, ColError> {
    let flags = c.bytes(n)?.to_vec();
    let mut out = Vec::with_capacity(n);
    for f in flags {
        out.push(match f {
            0 => None,
            1 => Some(c.f64_bits()?),
            _ => return Err(ColError::Corrupt("option flag out of range")),
        });
    }
    Ok(out)
}

/// Extract the per-kind rows once, then write each field as its own
/// array. `evs` is pre-filtered to `kind`; the `unreachable!` arms state
/// that invariant.
fn encode_column(
    buf: &mut Vec<u8>,
    kind: EventKind,
    evs: &[&TimedEvent],
    min_t: u64,
    dict: &HashMap<u64, u32>,
) {
    encode_ts(buf, evs, min_t);
    let dref = |id: InstanceId| u64::from(dict[&id.0]);
    match kind {
        EventKind::BidPlaced => {
            let rows: Vec<(u8, Option<f64>, Option<f64>)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::BidPlaced {
                        market,
                        bid,
                        predicted_risk,
                    } => (market_code(*market), *bid, *predicted_risk),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            buf.extend(rows.iter().map(|r| r.0));
            encode_opt_f64(buf, &rows.iter().map(|r| r.1).collect::<Vec<_>>());
            encode_opt_f64(buf, &rows.iter().map(|r| r.2).collect::<Vec<_>>());
        }
        EventKind::LeaseGranted => {
            let rows: Vec<(u64, u8, bool, SimTime, SimTime)> = evs
                .iter()
                .map(|(t, ev)| match ev {
                    TelemetryEvent::LeaseGranted {
                        id,
                        market,
                        spot,
                        ready_at,
                    } => (dref(*id), market_code(*market), *spot, *ready_at, *t),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, r.0);
            }
            buf.extend(rows.iter().map(|r| r.1));
            buf.extend(rows.iter().map(|r| u8::from(r.2)));
            for r in &rows {
                t_delta(buf, r.3, r.4);
            }
        }
        EventKind::LeaseDenied => {
            let rows: Vec<(u8, bool, u8)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::LeaseDenied {
                        market,
                        spot,
                        reason,
                    } => (market_code(*market), *spot, denial_code(*reason)),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            buf.extend(rows.iter().map(|r| r.0));
            buf.extend(rows.iter().map(|r| u8::from(r.1)));
            buf.extend(rows.iter().map(|r| r.2));
        }
        EventKind::LeaseActivated | EventKind::UnwarnedDeath => {
            let rows: Vec<(u64, u8)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::LeaseActivated { id, market }
                    | TelemetryEvent::UnwarnedDeath { id, market } => {
                        (dref(*id), market_code(*market))
                    }
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, r.0);
            }
            buf.extend(rows.iter().map(|r| r.1));
        }
        EventKind::ActivationFailed => {
            let rows: Vec<(u64, u8, bool)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::ActivationFailed { id, market, doomed } => {
                        (dref(*id), market_code(*market), *doomed)
                    }
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, r.0);
            }
            buf.extend(rows.iter().map(|r| r.1));
            buf.extend(rows.iter().map(|r| u8::from(r.2)));
        }
        EventKind::LeaseClosed => {
            #[allow(clippy::type_complexity)]
            let rows: Vec<(u64, u8, bool, u8, SimTime, SimTime, f64, SimTime)> = evs
                .iter()
                .map(|(t, ev)| match ev {
                    TelemetryEvent::LeaseClosed {
                        id,
                        market,
                        spot,
                        reason,
                        start,
                        end,
                        cost,
                    } => (
                        dref(*id),
                        market_code(*market),
                        *spot,
                        termination_code(*reason),
                        *start,
                        *end,
                        *cost,
                        *t,
                    ),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, r.0);
            }
            buf.extend(rows.iter().map(|r| r.1));
            buf.extend(rows.iter().map(|r| u8::from(r.2)));
            buf.extend(rows.iter().map(|r| r.3));
            for r in &rows {
                t_delta(buf, r.4, r.7);
            }
            for r in &rows {
                t_delta(buf, r.5, r.7);
            }
            for r in &rows {
                write_f64_bits(buf, r.6);
            }
        }
        EventKind::PriceCrossing | EventKind::RevocationWarning => {
            let rows: Vec<(u64, u8, SimTime, SimTime)> = evs
                .iter()
                .map(|(t, ev)| match ev {
                    TelemetryEvent::PriceCrossing { id, market, at } => {
                        (dref(*id), market_code(*market), *at, *t)
                    }
                    TelemetryEvent::RevocationWarning {
                        id,
                        market,
                        terminate_at,
                    } => (dref(*id), market_code(*market), *terminate_at, *t),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, r.0);
            }
            buf.extend(rows.iter().map(|r| r.1));
            for r in &rows {
                t_delta(buf, r.2, r.3);
            }
        }
        EventKind::MigrationStarted => {
            let rows: Vec<(u8, u8, u8)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::MigrationStarted { kind, from, to } => {
                        (migkind_code(*kind), market_code(*from), market_code(*to))
                    }
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            buf.extend(rows.iter().map(|r| r.0));
            buf.extend(rows.iter().map(|r| r.1));
            buf.extend(rows.iter().map(|r| r.2));
        }
        EventKind::MigrationPhase => {
            let rows: Vec<(u8, u64)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::MigrationPhase { phase, duration } => {
                        (phase_code(*phase), duration.as_millis())
                    }
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            buf.extend(rows.iter().map(|r| r.0));
            for r in &rows {
                write_u64(buf, r.1);
            }
        }
        EventKind::MigrationCompleted => {
            let rows: Vec<(u8, u8, u8, u64, u64)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::MigrationCompleted {
                        kind,
                        from,
                        to,
                        downtime,
                        degraded,
                    } => (
                        migkind_code(*kind),
                        market_code(*from),
                        market_code(*to),
                        downtime.as_millis(),
                        degraded.as_millis(),
                    ),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            buf.extend(rows.iter().map(|r| r.0));
            buf.extend(rows.iter().map(|r| r.1));
            buf.extend(rows.iter().map(|r| r.2));
            for r in &rows {
                write_u64(buf, r.3);
            }
            for r in &rows {
                write_u64(buf, r.4);
            }
        }
        EventKind::MigrationAborted => {
            let rows: Vec<(u8, u8)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::MigrationAborted { kind, from } => {
                        (migkind_code(*kind), market_code(*from))
                    }
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            buf.extend(rows.iter().map(|r| r.0));
            buf.extend(rows.iter().map(|r| r.1));
        }
        EventKind::Outage | EventKind::Degraded => {
            let rows: Vec<(SimTime, SimTime, SimTime)> = evs
                .iter()
                .map(|(t, ev)| match ev {
                    TelemetryEvent::Outage { start, end }
                    | TelemetryEvent::Degraded { start, end } => (*start, *end, *t),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                t_delta(buf, r.0, r.2);
            }
            for r in &rows {
                t_delta(buf, r.1, r.2);
            }
        }
        EventKind::ServiceUp => {
            let rows: Vec<(u64, u8, bool, bool)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::ServiceUp {
                        id,
                        market,
                        spot,
                        first,
                    } => (dref(*id), market_code(*market), *spot, *first),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, r.0);
            }
            buf.extend(rows.iter().map(|r| r.1));
            buf.extend(rows.iter().map(|r| u8::from(r.2)));
            buf.extend(rows.iter().map(|r| u8::from(r.3)));
        }
        EventKind::FaultInjected => {
            for (_, ev) in evs.iter().copied() {
                match ev {
                    TelemetryEvent::FaultInjected { kind } => buf.push(fault_code(*kind)),
                    _ => unreachable!("pre-filtered by kind"),
                }
            }
        }
        EventKind::BackoffScheduled => {
            let rows: Vec<(u32, SimTime, SimTime)> = evs
                .iter()
                .map(|(t, ev)| match ev {
                    TelemetryEvent::BackoffScheduled { attempt, until } => (*attempt, *until, *t),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, u64::from(r.0));
            }
            for r in &rows {
                t_delta(buf, r.1, r.2);
            }
        }
        EventKind::StateChange => {
            for (_, ev) in evs.iter().copied() {
                match ev {
                    TelemetryEvent::StateChange { state } => buf.push(state_code(*state)),
                    _ => unreachable!("pre-filtered by kind"),
                }
            }
        }
        EventKind::StormStarted | EventKind::StormEnded => {
            for (_, ev) in evs.iter().copied() {
                match ev {
                    TelemetryEvent::StormStarted { zone } | TelemetryEvent::StormEnded { zone } => {
                        buf.push(zone_code(*zone))
                    }
                    _ => unreachable!("pre-filtered by kind"),
                }
            }
        }
        EventKind::QuotaExhausted => {
            for (_, ev) in evs.iter().copied() {
                match ev {
                    TelemetryEvent::QuotaExhausted { market } => buf.push(market_code(*market)),
                    _ => unreachable!("pre-filtered by kind"),
                }
            }
        }
        EventKind::JobStarted => {
            let rows: Vec<(u32, u8, bool)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::JobStarted { job, market, spot } => {
                        (*job, market_code(*market), *spot)
                    }
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, u64::from(r.0));
            }
            buf.extend(rows.iter().map(|r| r.1));
            buf.extend(rows.iter().map(|r| u8::from(r.2)));
        }
        EventKind::JobCheckpointed => {
            let rows: Vec<(u32, u64)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::JobCheckpointed { job, duration } => {
                        (*job, duration.as_millis())
                    }
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, u64::from(r.0));
            }
            for r in &rows {
                write_u64(buf, r.1);
            }
        }
        EventKind::JobRestarted => {
            let rows: Vec<(u32, u8, u64)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::JobRestarted { job, market, lost } => {
                        (*job, market_code(*market), lost.as_millis())
                    }
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, u64::from(r.0));
            }
            buf.extend(rows.iter().map(|r| r.1));
            for r in &rows {
                write_u64(buf, r.2);
            }
        }
        EventKind::JobFinished => {
            let rows: Vec<(u32, bool, f64)> = evs
                .iter()
                .map(|(_, ev)| match ev {
                    TelemetryEvent::JobFinished { job, missed, cost } => (*job, *missed, *cost),
                    _ => unreachable!("pre-filtered by kind"),
                })
                .collect();
            for r in &rows {
                write_u64(buf, u64::from(r.0));
            }
            buf.extend(rows.iter().map(|r| u8::from(r.1)));
            for r in &rows {
                write_f64_bits(buf, r.2);
            }
        }
    }
}

fn decode_column(
    c: &mut Cursor<'_>,
    kind: EventKind,
    n: usize,
    min_t: u64,
    dict: &[u64],
) -> Result<Vec<TimedEvent>, ColError> {
    let ts = decode_ts(c, n, min_t)?;
    let mut out = Vec::with_capacity(n);
    match kind {
        EventKind::BidPlaced => {
            let markets = c.bytes(n)?.to_vec();
            let bids = decode_opt_f64(c, n)?;
            let risks = decode_opt_f64(c, n)?;
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::BidPlaced {
                        market: market_from_code(markets[i])?,
                        bid: bids[i],
                        predicted_risk: risks[i],
                    },
                ));
            }
        }
        EventKind::LeaseGranted => {
            let ids = read_vec(c, n, |c| c.u64())?;
            let markets = c.bytes(n)?.to_vec();
            let spots = c.bytes(n)?.to_vec();
            for i in 0..n {
                let ready_at = read_t_delta(c, ts[i])?;
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::LeaseGranted {
                        id: dict_id(dict, ids[i])?,
                        market: market_from_code(markets[i])?,
                        spot: spots[i] != 0,
                        ready_at,
                    },
                ));
            }
        }
        EventKind::LeaseDenied => {
            let markets = c.bytes(n)?.to_vec();
            let spots = c.bytes(n)?.to_vec();
            let reasons = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::LeaseDenied {
                        market: market_from_code(markets[i])?,
                        spot: spots[i] != 0,
                        reason: denial_from_code(reasons[i])?,
                    },
                ));
            }
        }
        EventKind::LeaseActivated | EventKind::UnwarnedDeath => {
            let ids = read_vec(c, n, |c| c.u64())?;
            let markets = c.bytes(n)?.to_vec();
            for i in 0..n {
                let id = dict_id(dict, ids[i])?;
                let market = market_from_code(markets[i])?;
                let ev = if kind == EventKind::LeaseActivated {
                    TelemetryEvent::LeaseActivated { id, market }
                } else {
                    TelemetryEvent::UnwarnedDeath { id, market }
                };
                out.push((SimTime(ts[i]), ev));
            }
        }
        EventKind::ActivationFailed => {
            let ids = read_vec(c, n, |c| c.u64())?;
            let markets = c.bytes(n)?.to_vec();
            let doomed = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::ActivationFailed {
                        id: dict_id(dict, ids[i])?,
                        market: market_from_code(markets[i])?,
                        doomed: doomed[i] != 0,
                    },
                ));
            }
        }
        EventKind::LeaseClosed => {
            let ids = read_vec(c, n, |c| c.u64())?;
            let markets = c.bytes(n)?.to_vec();
            let spots = c.bytes(n)?.to_vec();
            let reasons = c.bytes(n)?.to_vec();
            let mut starts = Vec::with_capacity(n);
            for &t in ts.iter().take(n) {
                starts.push(read_t_delta(c, t)?);
            }
            let mut ends = Vec::with_capacity(n);
            for &t in ts.iter().take(n) {
                ends.push(read_t_delta(c, t)?);
            }
            let costs = read_vec(c, n, |c| c.f64_bits())?;
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::LeaseClosed {
                        id: dict_id(dict, ids[i])?,
                        market: market_from_code(markets[i])?,
                        spot: spots[i] != 0,
                        reason: termination_from_code(reasons[i])?,
                        start: starts[i],
                        end: ends[i],
                        cost: costs[i],
                    },
                ));
            }
        }
        EventKind::PriceCrossing | EventKind::RevocationWarning => {
            let ids = read_vec(c, n, |c| c.u64())?;
            let markets = c.bytes(n)?.to_vec();
            for i in 0..n {
                let when = read_t_delta(c, ts[i])?;
                let id = dict_id(dict, ids[i])?;
                let market = market_from_code(markets[i])?;
                let ev = if kind == EventKind::PriceCrossing {
                    TelemetryEvent::PriceCrossing {
                        id,
                        market,
                        at: when,
                    }
                } else {
                    TelemetryEvent::RevocationWarning {
                        id,
                        market,
                        terminate_at: when,
                    }
                };
                out.push((SimTime(ts[i]), ev));
            }
        }
        EventKind::MigrationStarted => {
            let kinds = c.bytes(n)?.to_vec();
            let froms = c.bytes(n)?.to_vec();
            let tos = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::MigrationStarted {
                        kind: migkind_from_code(kinds[i])?,
                        from: market_from_code(froms[i])?,
                        to: market_from_code(tos[i])?,
                    },
                ));
            }
        }
        EventKind::MigrationPhase => {
            let phases = c.bytes(n)?.to_vec();
            let durs = read_vec(c, n, |c| c.u64())?;
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::MigrationPhase {
                        phase: phase_from_code(phases[i])?,
                        duration: SimDuration(durs[i]),
                    },
                ));
            }
        }
        EventKind::MigrationCompleted => {
            let kinds = c.bytes(n)?.to_vec();
            let froms = c.bytes(n)?.to_vec();
            let tos = c.bytes(n)?.to_vec();
            let downs = read_vec(c, n, |c| c.u64())?;
            let degs = read_vec(c, n, |c| c.u64())?;
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::MigrationCompleted {
                        kind: migkind_from_code(kinds[i])?,
                        from: market_from_code(froms[i])?,
                        to: market_from_code(tos[i])?,
                        downtime: SimDuration(downs[i]),
                        degraded: SimDuration(degs[i]),
                    },
                ));
            }
        }
        EventKind::MigrationAborted => {
            let kinds = c.bytes(n)?.to_vec();
            let froms = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::MigrationAborted {
                        kind: migkind_from_code(kinds[i])?,
                        from: market_from_code(froms[i])?,
                    },
                ));
            }
        }
        EventKind::Outage | EventKind::Degraded => {
            let mut starts = Vec::with_capacity(n);
            for &t in ts.iter().take(n) {
                starts.push(read_t_delta(c, t)?);
            }
            for i in 0..n {
                let end = read_t_delta(c, ts[i])?;
                let ev = if kind == EventKind::Outage {
                    TelemetryEvent::Outage {
                        start: starts[i],
                        end,
                    }
                } else {
                    TelemetryEvent::Degraded {
                        start: starts[i],
                        end,
                    }
                };
                out.push((SimTime(ts[i]), ev));
            }
        }
        EventKind::ServiceUp => {
            let ids = read_vec(c, n, |c| c.u64())?;
            let markets = c.bytes(n)?.to_vec();
            let spots = c.bytes(n)?.to_vec();
            let firsts = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::ServiceUp {
                        id: dict_id(dict, ids[i])?,
                        market: market_from_code(markets[i])?,
                        spot: spots[i] != 0,
                        first: firsts[i] != 0,
                    },
                ));
            }
        }
        EventKind::FaultInjected => {
            let kinds = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::FaultInjected {
                        kind: fault_from_code(kinds[i])?,
                    },
                ));
            }
        }
        EventKind::BackoffScheduled => {
            let attempts = read_vec(c, n, |c| {
                u32::try_from(c.u64()?).map_err(|_| ColError::Corrupt("attempt overflows u32"))
            })?;
            for i in 0..n {
                let until = read_t_delta(c, ts[i])?;
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::BackoffScheduled {
                        attempt: attempts[i],
                        until,
                    },
                ));
            }
        }
        EventKind::StateChange => {
            let states = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::StateChange {
                        state: state_from_code(states[i])?,
                    },
                ));
            }
        }
        EventKind::StormStarted | EventKind::StormEnded => {
            let zones = c.bytes(n)?.to_vec();
            for i in 0..n {
                let zone = zone_from_code(zones[i])?;
                let ev = if kind == EventKind::StormStarted {
                    TelemetryEvent::StormStarted { zone }
                } else {
                    TelemetryEvent::StormEnded { zone }
                };
                out.push((SimTime(ts[i]), ev));
            }
        }
        EventKind::QuotaExhausted => {
            let markets = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::QuotaExhausted {
                        market: market_from_code(markets[i])?,
                    },
                ));
            }
        }
        EventKind::JobStarted => {
            let jobs = read_vec(c, n, |c| {
                u32::try_from(c.u64()?).map_err(|_| ColError::Corrupt("job id overflows u32"))
            })?;
            let markets = c.bytes(n)?.to_vec();
            let spots = c.bytes(n)?.to_vec();
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::JobStarted {
                        job: jobs[i],
                        market: market_from_code(markets[i])?,
                        spot: spots[i] != 0,
                    },
                ));
            }
        }
        EventKind::JobCheckpointed => {
            let jobs = read_vec(c, n, |c| {
                u32::try_from(c.u64()?).map_err(|_| ColError::Corrupt("job id overflows u32"))
            })?;
            let durs = read_vec(c, n, |c| c.u64())?;
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::JobCheckpointed {
                        job: jobs[i],
                        duration: SimDuration(durs[i]),
                    },
                ));
            }
        }
        EventKind::JobRestarted => {
            let jobs = read_vec(c, n, |c| {
                u32::try_from(c.u64()?).map_err(|_| ColError::Corrupt("job id overflows u32"))
            })?;
            let markets = c.bytes(n)?.to_vec();
            let losts = read_vec(c, n, |c| c.u64())?;
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::JobRestarted {
                        job: jobs[i],
                        market: market_from_code(markets[i])?,
                        lost: SimDuration(losts[i]),
                    },
                ));
            }
        }
        EventKind::JobFinished => {
            let jobs = read_vec(c, n, |c| {
                u32::try_from(c.u64()?).map_err(|_| ColError::Corrupt("job id overflows u32"))
            })?;
            let missed = c.bytes(n)?.to_vec();
            let costs = read_vec(c, n, |c| c.f64_bits())?;
            for i in 0..n {
                out.push((
                    SimTime(ts[i]),
                    TelemetryEvent::JobFinished {
                        job: jobs[i],
                        missed: missed[i] != 0,
                        cost: costs[i],
                    },
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spothost_market::types::{InstanceType, MarketId, Zone};
    use spothost_telemetry::SchedulerState;

    fn m(i: usize) -> MarketId {
        MarketId::new(Zone::ALL[i % 4], InstanceType::ALL[i % 4])
    }

    fn sample_stream() -> Vec<TimedEvent> {
        vec![
            (
                SimTime::millis(10),
                TelemetryEvent::BidPlaced {
                    market: m(0),
                    bid: Some(0.25),
                    predicted_risk: None,
                },
            ),
            (
                SimTime::millis(10),
                TelemetryEvent::StateChange {
                    state: SchedulerState::Boot,
                },
            ),
            (
                SimTime::millis(500),
                TelemetryEvent::LeaseGranted {
                    id: InstanceId(3),
                    market: m(0),
                    spot: true,
                    ready_at: SimTime::millis(60_500),
                },
            ),
            (
                SimTime::millis(60_500),
                TelemetryEvent::LeaseClosed {
                    id: InstanceId(3),
                    market: m(0),
                    spot: true,
                    reason: spothost_cloudsim::TerminationReason::Revoked,
                    start: SimTime::millis(500),
                    end: SimTime::millis(60_500),
                    cost: 0.017,
                },
            ),
            (
                SimTime::millis(61_000),
                TelemetryEvent::Outage {
                    start: SimTime::millis(60_500),
                    end: SimTime::millis(61_000),
                },
            ),
        ]
    }

    #[test]
    fn seal_decode_roundtrip_preserves_stream() {
        let events = sample_stream();
        let payload = seal(Some(7), &events);
        let (meta, decoded) = decode(&payload).unwrap();
        assert_eq!(meta.vm, Some(7));
        assert_eq!(meta.count, events.len());
        assert_eq!(meta.min_t_ms, 10);
        assert_eq!(meta.max_t_ms, 61_000);
        assert_eq!(decoded, events);
    }

    #[test]
    fn meta_bitmaps_reflect_contents() {
        let payload = seal(None, &sample_stream());
        let meta = decode_meta(&payload).unwrap();
        assert_eq!(meta.vm, None);
        assert!(meta.kinds & (1 << EventKind::LeaseClosed.index()) != 0);
        assert!(meta.kinds & (1 << EventKind::StormStarted.index()) == 0);
        assert!(meta.markets & (1 << m(0).dense_index()) != 0);
        assert!(meta.zones & (1 << m(0).zone.index()) != 0);
    }

    #[test]
    fn empty_input_seals_to_empty_payload() {
        assert!(seal(None, &[]).is_empty());
    }

    #[test]
    fn corrupt_payloads_error_not_panic() {
        let payload = seal(None, &sample_stream());
        assert!(decode(&payload[..payload.len() - 1]).is_err());
        assert!(decode(&payload[..3]).is_err());
        let mut trailing = payload.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err());
        assert!(decode(&[]).is_err());
    }
}
