//! End-to-end: a real scheduler run streamed through a [`ColumnarSink`]
//! round-trips bit-exactly, compresses ≥5x vs the equivalent JSONL, and
//! a time-range query prunes blocks without decoding the whole file —
//! the ISSUE's acceptance criteria, run against live simulator output
//! rather than synthetic streams.

use spothost_core::prelude::*;
use spothost_core::scheduler::SimRun;
use spothost_eventstore::query::{grouped_values, percentile_of, Field, GroupBy, Predicate};
use spothost_eventstore::read::ColReader;
use spothost_eventstore::store::ColumnarStore;
use spothost_eventstore::EventKind;
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::types::{InstanceType, MarketId, Zone};
use spothost_telemetry::export::event_to_json;
use spothost_telemetry::Recorder;

/// A config chaotic enough to exercise most event kinds.
fn chaos_cfg() -> SchedulerConfig {
    let mut faults = FaultConfig::none();
    faults.spot_capacity_rate = 0.2;
    faults.warning_miss_rate = 0.2;
    faults.ckpt_failure_rate = 0.1;
    SchedulerConfig::single_market(MarketId::new(Zone::UsEast1a, InstanceType::Small))
        .with_policy(BiddingPolicy::Reactive)
        .with_faults(faults)
}

/// Run once with a recorder AND a columnar sink attached (tuple sink):
/// both observe the identical emission stream.
fn run_both(
    cfg: &SchedulerConfig,
    seed: u64,
    horizon: SimDuration,
    block_events: usize,
) -> (Recorder, ColumnarStore, RunReport) {
    let catalog = Catalog::ec2_2015();
    let markets = cfg.candidates();
    let traces = TraceSet::generate(&catalog, &markets, seed, horizon);
    let mut rec = Recorder::with_capacity(1 << 20);
    let store = ColumnarStore::in_memory().with_block_events(block_events);
    let report = {
        let sink = store.sink();
        SimRun::new(&traces, cfg, seed)
            .with_sink((&mut rec, sink))
            .run()
    };
    (rec, store, report)
}

#[test]
fn live_run_roundtrips_bit_exact() {
    let cfg = chaos_cfg();
    let (rec, store, _) = run_both(&cfg, 7, SimDuration::days(14), 512);
    assert_eq!(rec.dropped(), 0, "recorder capacity exceeded");
    let raw: Vec<_> = rec.events().cloned().collect();
    assert!(raw.len() > 500, "run too quiet to be a useful fixture");

    let reader = ColReader::from_bytes(&store.bytes()).expect("parse");
    assert_eq!(reader.event_count(), raw.len() as u64);
    let decoded = reader.decode_all().expect("decode");
    // Simulator streams carry no NaN, so derived equality is exact; the
    // JSON re-render doubles as a field-level diff on failure.
    for ((t, ev), se) in raw.iter().zip(&decoded) {
        assert_eq!(*t, se.at);
        assert_eq!(
            event_to_json(*t, ev),
            event_to_json(se.at, &se.event),
            "decoded event differs from live stream"
        );
        assert_eq!(ev, &se.event);
    }
}

#[test]
fn columnar_is_at_least_5x_smaller_than_jsonl() {
    let cfg = chaos_cfg();
    let (rec, store, _) = run_both(&cfg, 11, SimDuration::days(30), 4096);
    assert_eq!(rec.dropped(), 0);

    let mut jsonl = Vec::new();
    rec.write_jsonl(&mut jsonl).expect("jsonl");
    let col = store.bytes();
    assert!(!col.is_empty());
    let ratio = jsonl.len() as f64 / col.len() as f64;
    assert!(
        ratio >= 5.0,
        "compression ratio {ratio:.2} < 5.0 (jsonl {} bytes, col {} bytes)",
        jsonl.len(),
        col.len()
    );
}

#[test]
fn time_range_query_prunes_blocks() {
    let cfg = chaos_cfg();
    let (rec, store, _) = run_both(&cfg, 3, SimDuration::days(30), 256);
    assert_eq!(rec.dropped(), 0);

    let reader = ColReader::from_bytes(&store.bytes()).expect("parse");
    assert!(
        reader.block_count() >= 4,
        "need several blocks to demonstrate pruning, got {}",
        reader.block_count()
    );

    // First simulated day only: most blocks must be skipped unread.
    let pred = Predicate::any().with_time_range(SimTime::ZERO, SimTime::days(1));
    let sel = reader.select(&pred).expect("select");
    assert!(
        sel.blocks_decoded < sel.blocks_total,
        "expected pruning: decoded {}/{} blocks",
        sel.blocks_decoded,
        sel.blocks_total
    );
    assert!(!sel.events.is_empty());
    assert!(sel
        .events
        .iter()
        .all(|se| se.at.as_millis() <= SimTime::days(1).as_millis()));

    // Kind-restricted query agrees with the brute-force filter.
    let closed = reader
        .select(&Predicate::any().with_kind(EventKind::LeaseClosed))
        .expect("select");
    let brute = reader
        .decode_all()
        .expect("decode")
        .into_iter()
        .filter(|se| EventKind::of(&se.event) == EventKind::LeaseClosed)
        .count();
    assert_eq!(closed.events.len(), brute);
}

#[test]
fn query_aggregate_matches_raw_stream_aggregate() {
    let cfg = chaos_cfg();
    let (rec, store, report) = run_both(&cfg, 5, SimDuration::days(30), 1024);
    assert_eq!(rec.dropped(), 0);

    let reader = ColReader::from_bytes(&store.bytes()).expect("parse");
    let all = reader.decode_all().expect("decode");

    // Sum of LeaseClosed.cost through the query API equals the report's
    // total cost bitwise (the stream-replay invariant, now through the
    // columnar store).
    let by_none = grouped_values(&all, Field::Cost, GroupBy::None);
    let total: f64 = by_none.iter().flat_map(|(_, v)| v).sum();
    assert_eq!(total.to_bits(), report.cost.to_bits());

    // p99 cost from the store equals p99 computed from the recorder's
    // raw stream.
    let mut raw_costs = Vec::new();
    for (_, ev) in rec.events() {
        if let spothost_telemetry::TelemetryEvent::LeaseClosed { cost, .. } = ev {
            raw_costs.push(*cost);
        }
    }
    let from_store: Vec<f64> = by_none.into_iter().flat_map(|(_, v)| v).collect();
    assert_eq!(from_store.len(), raw_costs.len());
    assert_eq!(
        percentile_of(&from_store, 99.0).to_bits(),
        percentile_of(&raw_costs, 99.0).to_bits()
    );
}
