//! Property tests for the columnar format and the query layer.
//!
//! (a) Lossless round-trip: for ANY event stream — arbitrary variants,
//!     arbitrary field values including full-bit-pattern floats — sealing
//!     into blocks and decoding reproduces the exact `TimedEvent` stream:
//!     timestamps equal, every field equal, `f64`s `to_bits`-equal. The
//!     re-encoded payload is byte-identical, so nothing is silently
//!     normalized either.
//! (b) Aggregate parity: percentiles, sums and histograms computed
//!     through the query API over a stored stream equal the same
//!     aggregates computed directly from the raw in-memory stream.
//! (c) Pruning soundness: any predicate's pruned selection equals the
//!     brute-force filter of the fully decoded stream — pruning never
//!     drops a matching event.

use proptest::prelude::*;
use spothost_cloudsim::{InstanceId, TerminationReason};
use spothost_eventstore::query::{
    group_counts, grouped_values, histogram_of, percentile_of, Field, GroupBy, Predicate,
};
use spothost_eventstore::read::{ColReader, StoredEvent};
use spothost_eventstore::store::ColumnarStore;
use spothost_eventstore::{block, EventKind};
use spothost_faults::FaultKind;
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::types::{InstanceType, MarketId, Zone};
use spothost_telemetry::{
    DenialReason, MigrationPhase, SchedulerState, Sink, TelemetryEvent, TimedEvent,
};
use spothost_virt::MigrationKind;

// ---- strategies (built on the workspace's minimal vendored proptest) -----

fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (prop::bool::ANY, s).prop_map(|(some, v)| if some { Some(v) } else { None })
}

fn arb_market() -> impl Strategy<Value = MarketId> {
    (0usize..4, 0usize..4).prop_map(|(z, i)| MarketId::new(Zone::ALL[z], InstanceType::ALL[i]))
}

fn arb_zone() -> impl Strategy<Value = Zone> {
    (0usize..4).prop_map(|z| Zone::ALL[z])
}

fn arb_id() -> impl Strategy<Value = InstanceId> {
    // Small ids (dictionary hits) and arbitrary u64 ids.
    prop_oneof![
        (0u64..8).prop_map(InstanceId),
        (0u64..=u64::MAX).prop_map(InstanceId),
    ]
}

/// Full-bit-pattern floats: every NaN payload, both zeros, infinities.
fn arb_f64_bits() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..10.0,
        0.0f64..10.0,
        0.0f64..10.0,
        (0u64..=u64::MAX).prop_map(f64::from_bits),
    ]
}

fn arb_time() -> impl Strategy<Value = SimTime> {
    // Near-stream times, the MAX sentinel, and the whole u64 range: the
    // format must be lossless everywhere.
    prop_oneof![
        (0u64..10_000_000u64).prop_map(SimTime::millis),
        (0u64..10_000_000u64).prop_map(SimTime::millis),
        (0u64..10_000_000u64).prop_map(SimTime::millis),
        (0u64..10_000_000u64).prop_map(SimTime::millis),
        Just(SimTime::MAX),
        (0u64..=u64::MAX).prop_map(SimTime),
    ]
}

fn arb_duration() -> impl Strategy<Value = SimDuration> {
    (0u64..100_000_000u64).prop_map(SimDuration::millis)
}

fn arb_term() -> impl Strategy<Value = TerminationReason> {
    prop_oneof![
        Just(TerminationReason::Revoked),
        Just(TerminationReason::Voluntary),
        Just(TerminationReason::FailedAllocation),
    ]
}

fn arb_denial() -> impl Strategy<Value = DenialReason> {
    prop_oneof![
        Just(DenialReason::UnknownMarket),
        Just(DenialReason::BidBelowPrice),
        Just(DenialReason::BidAboveCap),
        Just(DenialReason::InsufficientCapacity),
        Just(DenialReason::QuotaExhausted),
    ]
}

fn arb_phase() -> impl Strategy<Value = MigrationPhase> {
    prop_oneof![
        Just(MigrationPhase::Prepare),
        Just(MigrationPhase::LivePrecopy),
        Just(MigrationPhase::CkptFlush),
        Just(MigrationPhase::Restore),
        Just(MigrationPhase::LazyFaultIn),
    ]
}

fn arb_state() -> impl Strategy<Value = SchedulerState> {
    prop_oneof![
        Just(SchedulerState::Boot),
        Just(SchedulerState::Active),
        Just(SchedulerState::Migrating),
        Just(SchedulerState::Evacuating),
        Just(SchedulerState::DownWaiting),
        Just(SchedulerState::Restoring),
        Just(SchedulerState::Reacquiring),
    ]
}

fn arb_fault() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::SpotCapacity),
        Just(FaultKind::OdCapacity),
        Just(FaultKind::StartupFailure),
        Just(FaultKind::WarningMiss),
        Just(FaultKind::WarningDelay),
        Just(FaultKind::VolumeDelay),
        Just(FaultKind::CkptWriteFail),
        Just(FaultKind::LiveAbort),
        Just(FaultKind::LazyStorm),
    ]
}

fn arb_mig() -> impl Strategy<Value = MigrationKind> {
    prop_oneof![
        Just(MigrationKind::Forced),
        Just(MigrationKind::Planned),
        Just(MigrationKind::Reverse),
    ]
}

fn arb_event() -> impl Strategy<Value = TelemetryEvent> {
    prop_oneof![
        (arb_market(), opt(arb_f64_bits()), opt(arb_f64_bits())).prop_map(
            |(market, bid, predicted_risk)| TelemetryEvent::BidPlaced {
                market,
                bid,
                predicted_risk
            }
        ),
        (arb_id(), arb_market(), prop::bool::ANY, arb_time()).prop_map(
            |(id, market, spot, ready_at)| TelemetryEvent::LeaseGranted {
                id,
                market,
                spot,
                ready_at
            }
        ),
        (arb_market(), prop::bool::ANY, arb_denial()).prop_map(|(market, spot, reason)| {
            TelemetryEvent::LeaseDenied {
                market,
                spot,
                reason,
            }
        }),
        (arb_id(), arb_market())
            .prop_map(|(id, market)| TelemetryEvent::LeaseActivated { id, market }),
        (arb_id(), arb_market(), prop::bool::ANY).prop_map(|(id, market, doomed)| {
            TelemetryEvent::ActivationFailed { id, market, doomed }
        }),
        (
            arb_id(),
            arb_market(),
            prop::bool::ANY,
            arb_term(),
            arb_time(),
            arb_time(),
            arb_f64_bits()
        )
            .prop_map(|(id, market, spot, reason, start, end, cost)| {
                TelemetryEvent::LeaseClosed {
                    id,
                    market,
                    spot,
                    reason,
                    start,
                    end,
                    cost,
                }
            }),
        (arb_id(), arb_market(), arb_time())
            .prop_map(|(id, market, at)| TelemetryEvent::PriceCrossing { id, market, at }),
        (arb_id(), arb_market(), arb_time()).prop_map(|(id, market, terminate_at)| {
            TelemetryEvent::RevocationWarning {
                id,
                market,
                terminate_at,
            }
        }),
        (arb_id(), arb_market())
            .prop_map(|(id, market)| TelemetryEvent::UnwarnedDeath { id, market }),
        (arb_mig(), arb_market(), arb_market())
            .prop_map(|(kind, from, to)| TelemetryEvent::MigrationStarted { kind, from, to }),
        (arb_phase(), arb_duration())
            .prop_map(|(phase, duration)| TelemetryEvent::MigrationPhase { phase, duration }),
        (
            arb_mig(),
            arb_market(),
            arb_market(),
            arb_duration(),
            arb_duration()
        )
            .prop_map(|(kind, from, to, downtime, degraded)| {
                TelemetryEvent::MigrationCompleted {
                    kind,
                    from,
                    to,
                    downtime,
                    degraded,
                }
            }),
        (arb_mig(), arb_market())
            .prop_map(|(kind, from)| TelemetryEvent::MigrationAborted { kind, from }),
        (arb_time(), arb_time()).prop_map(|(start, end)| TelemetryEvent::Outage { start, end }),
        (arb_time(), arb_time()).prop_map(|(start, end)| TelemetryEvent::Degraded { start, end }),
        (arb_id(), arb_market(), prop::bool::ANY, prop::bool::ANY).prop_map(
            |(id, market, spot, first)| TelemetryEvent::ServiceUp {
                id,
                market,
                spot,
                first
            }
        ),
        arb_fault().prop_map(|kind| TelemetryEvent::FaultInjected { kind }),
        ((0u32..=u32::MAX), arb_time())
            .prop_map(|(attempt, until)| TelemetryEvent::BackoffScheduled { attempt, until }),
        arb_state().prop_map(|state| TelemetryEvent::StateChange { state }),
        arb_zone().prop_map(|zone| TelemetryEvent::StormStarted { zone }),
        arb_zone().prop_map(|zone| TelemetryEvent::StormEnded { zone }),
        arb_market().prop_map(|market| TelemetryEvent::QuotaExhausted { market }),
        ((0u32..=u32::MAX), arb_market(), prop::bool::ANY)
            .prop_map(|(job, market, spot)| TelemetryEvent::JobStarted { job, market, spot }),
        ((0u32..=u32::MAX), arb_duration())
            .prop_map(|(job, duration)| TelemetryEvent::JobCheckpointed { job, duration }),
        ((0u32..=u32::MAX), arb_market(), arb_duration())
            .prop_map(|(job, market, lost)| TelemetryEvent::JobRestarted { job, market, lost }),
        ((0u32..=u32::MAX), prop::bool::ANY, arb_f64_bits())
            .prop_map(|(job, missed, cost)| TelemetryEvent::JobFinished { job, missed, cost }),
    ]
}

/// A monotone event stream: timestamps are a prefix sum of deltas.
fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<TimedEvent>> {
    prop::collection::vec((0u64..600_000u64, arb_event()), 0..max_len).prop_map(|raw| {
        let mut t = 0u64;
        raw.into_iter()
            .map(|(dt, ev)| {
                t += dt;
                (SimTime::millis(t), ev)
            })
            .collect()
    })
}

// ---- bit-exact comparison ------------------------------------------------

/// `f64`-aware equality: like `PartialEq` but NaN-safe (`to_bits`).
fn events_bits_equal(a: &TelemetryEvent, b: &TelemetryEvent) -> bool {
    use TelemetryEvent as E;
    let opt_bits = |x: Option<f64>, y: Option<f64>| match (x, y) {
        (None, None) => true,
        (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    };
    match (a, b) {
        (
            E::BidPlaced {
                market: m1,
                bid: b1,
                predicted_risk: r1,
            },
            E::BidPlaced {
                market: m2,
                bid: b2,
                predicted_risk: r2,
            },
        ) => m1 == m2 && opt_bits(*b1, *b2) && opt_bits(*r1, *r2),
        (
            E::LeaseClosed {
                cost: c1,
                id: i1,
                market: m1,
                spot: s1,
                reason: r1,
                start: st1,
                end: e1,
            },
            E::LeaseClosed {
                cost: c2,
                id: i2,
                market: m2,
                spot: s2,
                reason: r2,
                start: st2,
                end: e2,
            },
        ) => c1.to_bits() == c2.to_bits() && (i1, m1, s1, r1, st1, e1) == (i2, m2, s2, r2, st2, e2),
        (
            E::JobFinished {
                job: j1,
                missed: x1,
                cost: c1,
            },
            E::JobFinished {
                job: j2,
                missed: x2,
                cost: c2,
            },
        ) => (j1, x1) == (j2, x2) && c1.to_bits() == c2.to_bits(),
        // Every other variant is float-free: derived equality is exact.
        _ => a == b,
    }
}

fn store_roundtrip(events: &[TimedEvent], block_events: usize) -> Vec<StoredEvent> {
    let store = ColumnarStore::in_memory().with_block_events(block_events);
    {
        let mut sink = store.sink();
        for (t, ev) in events {
            sink.emit(*t, *ev);
        }
    }
    let reader = ColReader::from_bytes(&store.bytes()).expect("store bytes must parse");
    reader.decode_all().expect("store bytes must decode")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// (a) decode ∘ encode is the identity, bit-for-bit.
    #[test]
    fn roundtrip_is_lossless(events in arb_stream(120), vm in opt(0u32..64)) {
        let payload = block::seal(vm, &events);
        if events.is_empty() {
            prop_assert!(payload.is_empty());
            return Ok(());
        }
        let (meta, decoded) = block::decode(&payload).expect("sealed block must decode");
        prop_assert_eq!(meta.vm, vm);
        prop_assert_eq!(decoded.len(), events.len());
        for ((t1, e1), (t2, e2)) in events.iter().zip(&decoded) {
            // ISSUE: timestamp equality is to_bits-style exact (u64 ms).
            prop_assert_eq!(t1.as_millis(), t2.as_millis());
            prop_assert!(events_bits_equal(e1, e2), "event mismatch: {:?} vs {:?}", e1, e2);
        }
        // Nothing silently normalized: re-sealing the decoded stream
        // yields the identical payload.
        prop_assert_eq!(block::seal(vm, &decoded), payload);
    }

    /// (a') the full store (multi-block, framed file) round-trips too.
    #[test]
    fn multi_block_store_roundtrips(events in arb_stream(150), block_events in 1usize..16) {
        let decoded = store_roundtrip(&events, block_events);
        prop_assert_eq!(decoded.len(), events.len());
        for ((t1, e1), se) in events.iter().zip(&decoded) {
            prop_assert_eq!(t1.as_millis(), se.at.as_millis());
            prop_assert_eq!(se.vm, None);
            prop_assert!(events_bits_equal(e1, &se.event));
        }
    }

    /// (b) aggregates through the query API equal aggregates computed
    /// from the raw stream.
    #[test]
    fn aggregates_match_raw_stream(events in arb_stream(150)) {
        let stored = store_roundtrip(&events, 16);
        let raw: Vec<StoredEvent> = events
            .iter()
            .map(|(t, ev)| StoredEvent { vm: None, at: *t, event: *ev })
            .collect();

        for field in [Field::Cost, Field::LeaseHours, Field::OutageSeconds] {
            let a = grouped_values(&stored, field, GroupBy::Zone);
            let b = grouped_values(&raw, field, GroupBy::Zone);
            prop_assert_eq!(a.len(), b.len());
            for ((ka, va), (kb, vb)) in a.iter().zip(&b) {
                prop_assert_eq!(ka, kb);
                prop_assert_eq!(va.len(), vb.len());
                for (x, y) in va.iter().zip(vb) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
                // Identical samples in identical order: percentile and
                // histogram agree exactly (same analysis code path).
                if va.iter().all(|v| !v.is_nan()) {
                    let pa = percentile_of(va, 99.0);
                    let pb = percentile_of(vb, 99.0);
                    prop_assert_eq!(pa.to_bits(), pb.to_bits());
                }
                let ha = histogram_of(va, 8);
                let hb = histogram_of(vb, 8);
                prop_assert_eq!(ha.counts(), hb.counts());
                prop_assert_eq!(ha.count(), hb.count());
            }
        }
        prop_assert_eq!(
            group_counts(&stored, GroupBy::Kind),
            group_counts(&raw, GroupBy::Kind)
        );
    }

    /// (c) pruned selection == brute-force filter of the full stream.
    #[test]
    fn pruning_never_drops_matches(
        events in arb_stream(150),
        block_events in 1usize..12,
        from_ms in 0u64..40_000_000u64,
        len_ms in 0u64..40_000_000u64,
        kind_i in opt(0usize..26),
        zone_i in opt(0usize..4),
    ) {
        let store = ColumnarStore::in_memory().with_block_events(block_events);
        {
            let mut sink = store.sink();
            for (t, ev) in &events {
                sink.emit(*t, *ev);
            }
        }
        let reader = ColReader::from_bytes(&store.bytes()).expect("parse");

        let mut pred = Predicate::any()
            .with_time_range(SimTime::millis(from_ms), SimTime::millis(from_ms + len_ms));
        if let Some(i) = kind_i {
            pred = pred.with_kind(EventKind::ALL[i]);
        }
        if let Some(z) = zone_i {
            pred = pred.with_zone(Zone::ALL[z]);
        }

        let sel = reader.select(&pred).expect("select");
        let all = reader.decode_all().expect("decode");
        let brute: Vec<&StoredEvent> = all.iter().filter(|se| pred.matches_event(se)).collect();
        prop_assert_eq!(sel.events.len(), brute.len());
        for (a, b) in sel.events.iter().zip(brute) {
            prop_assert_eq!(a.at, b.at);
            prop_assert!(events_bits_equal(&a.event, &b.event));
        }
        prop_assert!(sel.blocks_decoded <= sel.blocks_total);
    }
}

/// NaN payloads and signed zeros survive verbatim (regression anchor for
/// the `to_bits` guarantee, independent of proptest sampling).
#[test]
fn nan_payloads_roundtrip_bit_exact() {
    let weird = f64::from_bits(0x7ff8_dead_beef_cafe);
    let events = vec![
        (
            SimTime::millis(5),
            TelemetryEvent::BidPlaced {
                market: MarketId::new(Zone::UsEast1a, InstanceType::Small),
                bid: Some(weird),
                predicted_risk: Some(-0.0),
            },
        ),
        (
            SimTime::millis(9),
            TelemetryEvent::LeaseClosed {
                id: InstanceId(7),
                market: MarketId::new(Zone::EuWest1a, InstanceType::XLarge),
                spot: false,
                reason: TerminationReason::Voluntary,
                start: SimTime::ZERO,
                end: SimTime::MAX,
                cost: f64::NEG_INFINITY,
            },
        ),
    ];
    let payload = block::seal(None, &events);
    let (_, decoded) = block::decode(&payload).expect("decode");
    match &decoded[0].1 {
        TelemetryEvent::BidPlaced {
            bid,
            predicted_risk,
            ..
        } => {
            assert_eq!(bid.expect("bid present").to_bits(), weird.to_bits());
            assert_eq!(
                predicted_risk.expect("risk present").to_bits(),
                (-0.0f64).to_bits()
            );
        }
        other => panic!("wrong variant decoded: {other:?}"),
    }
    match &decoded[1].1 {
        TelemetryEvent::LeaseClosed { cost, end, .. } => {
            assert_eq!(cost.to_bits(), f64::NEG_INFINITY.to_bits());
            assert_eq!(*end, SimTime::MAX);
        }
        other => panic!("wrong variant decoded: {other:?}"),
    }
}
