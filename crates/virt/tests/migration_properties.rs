//! Property-based tests of the migration mechanism models.

use proptest::prelude::*;
use spothost_market::time::SimDuration;
use spothost_market::types::Region;
use spothost_virt::*;

fn arb_vm() -> impl Strategy<Value = VmSpec> {
    (0.5f64..32.0, 0.0f64..0.04, 0.05f64..0.9).prop_map(|(mem, dirty, ws_frac)| VmSpec {
        memory_gib: mem,
        dirty_rate_gib_per_s: dirty,
        working_set_gib: (mem * ws_frac).max(0.01),
    })
}

fn arb_params() -> impl Strategy<Value = VirtParams> {
    (
        5.0f64..60.0,  // ckpt write s/GiB
        5.0f64..150.0, // std restore s/GiB
        5.0f64..60.0,  // lazy restore s
        0.01f64..0.2,  // live bandwidth GiB/s
        1u64..60,      // yank bound s
        0.0f64..1.0,   // prestage factor
    )
        .prop_map(|(ckpt, restore, lazy, bw, tau, prestage)| {
            let mut p = VirtParams::typical();
            p.ckpt_write_s_per_gib = ckpt;
            p.std_restore_s_per_gib = restore;
            p.lazy_restore_s = lazy;
            p.live_bandwidth_gib_per_s = bw;
            p.yank_bound = SimDuration::secs(tau);
            p.prestage_factor = prestage;
            p
        })
        .prop_filter("valid", |p| p.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn live_migration_invariants(vm in arb_vm(), params in arb_params()) {
        let out = live_migration(&vm, &params);
        // Downtime is part of the total.
        prop_assert!(out.downtime <= out.total);
        // At least the whole memory crosses the wire.
        prop_assert!(out.transferred_gib >= vm.memory_gib - 1e-9);
        prop_assert!(out.rounds >= 1);
        prop_assert!(out.downtime >= params.live_downtime_floor);
    }

    #[test]
    fn yank_bound_always_holds(vm in arb_vm(), params in arb_params(), elapsed_s in 0u64..1_000_000) {
        let ckpt = BoundedCheckpointer::new(&vm, &params);
        let w = ckpt.final_write_duration(SimDuration::secs(elapsed_s));
        prop_assert!(w <= ckpt.tau, "final write {w} exceeds tau {}", ckpt.tau);
    }

    #[test]
    fn forced_timing_decomposes(vm in arb_vm(), params in arb_params()) {
        let ctx = MigrationContext::local(vm, Region::UsEast1);
        for combo in MechanismCombo::ALL {
            let t = plan_migration(combo, MigrationKind::Forced, &ctx, &params);
            // Forced downtime = flush + restore; at least the flush.
            prop_assert!(t.downtime >= params.final_ckpt_write());
            prop_assert_eq!(t.prepare, SimDuration::ZERO, "forced moves have no prepare window");
            if !combo.lazy_restore {
                prop_assert_eq!(t.degraded, SimDuration::ZERO);
            }
        }
    }

    #[test]
    fn voluntary_downtime_never_exceeds_forced(vm in arb_vm(), params in arb_params()) {
        // Having preparation time can only help.
        let ctx = MigrationContext::local(vm, Region::UsEast1);
        for combo in MechanismCombo::ALL {
            let forced = plan_migration(combo, MigrationKind::Forced, &ctx, &params);
            let planned = plan_migration(combo, MigrationKind::Planned, &ctx, &params);
            prop_assert!(
                planned.downtime <= forced.downtime.max(SimDuration::secs(11)),
                "{combo}: planned {} vs forced {}",
                planned.downtime,
                forced.downtime
            );
        }
    }

    #[test]
    fn lazy_restore_downtime_size_independent(params in arb_params(), mem_a in 1.0f64..8.0, mem_b in 8.0f64..32.0) {
        let mk = |mem: f64| {
            let vm = VmSpec { memory_gib: mem, dirty_rate_gib_per_s: 0.005, working_set_gib: 0.25 };
            lazy_restore(&vm, &params).resume_latency
        };
        prop_assert_eq!(mk(mem_a), mk(mem_b));
    }

    #[test]
    fn eager_restore_scales_with_memory(params in arb_params(), mem in 1.0f64..32.0) {
        let vm = VmSpec { memory_gib: mem, dirty_rate_gib_per_s: 0.005, working_set_gib: 0.25 };
        let out = standard_restore(&vm, &params);
        let expect = mem * params.std_restore_s_per_gib;
        prop_assert!((out.resume_latency.as_secs_f64() - expect).abs() < 0.01);
    }

    #[test]
    fn wan_disk_copy_linear_in_size(gib in 0.0f64..100.0) {
        let pair = RegionPair::new(Region::UsEast1, Region::EuWest1);
        let one = disk_copy_duration(pair, 1.0).as_secs_f64();
        let many = disk_copy_duration(pair, gib).as_secs_f64();
        prop_assert!((many - one * gib).abs() < 0.01 * many.max(1.0));
    }
}
