//! Yank-style bounded memory checkpointing (Singh et al., NSDI'13).
//!
//! The checkpointer continuously writes memory state to a network volume in
//! the background. Given a bound `tau`, it adapts the checkpoint period so
//! that the *incremental* state accumulated since the last checkpoint can
//! always be flushed within `tau` seconds. Because the volume survives
//! revocation, a spot server that receives its two-minute warning only has
//! to flush that bounded increment — which is why forced migrations are
//! feasible at all (§3.2).

use crate::params::VirtParams;
use crate::vm::VmSpec;
use spothost_market::time::SimDuration;

/// A configured bounded checkpointer for one VM.
#[derive(Debug, Clone, Copy)]
pub struct BoundedCheckpointer {
    /// Bound on the final incremental write.
    pub tau: SimDuration,
    /// Write rate to the network volume, s/GiB.
    write_s_per_gib: f64,
    /// The VM's dirty rate, GiB/s.
    dirty_rate_gib_per_s: f64,
    /// The VM's total memory, GiB.
    memory_gib: f64,
    /// Fixed per-checkpoint cost (snapshot setup, metadata), seconds.
    fixed_overhead_s: f64,
}

impl BoundedCheckpointer {
    pub fn new(vm: &VmSpec, params: &VirtParams) -> Self {
        debug_assert!(vm.validate().is_ok());
        debug_assert!(params.validate().is_ok());
        BoundedCheckpointer {
            tau: params.yank_bound,
            write_s_per_gib: params.ckpt_write_s_per_gib,
            dirty_rate_gib_per_s: vm.dirty_rate_gib_per_s,
            memory_gib: vm.memory_gib,
            fixed_overhead_s: params.ckpt_fixed_overhead_s,
        }
    }

    /// The most incremental state (GiB) that can be flushed within `tau`.
    pub fn max_increment_gib(&self) -> f64 {
        self.tau.as_secs_f64() / self.write_s_per_gib
    }

    /// The background checkpoint period that keeps the increment under the
    /// bound: dirty_rate * period <= max_increment. A VM that dirties
    /// nothing needs no periodic checkpoints (`None`).
    pub fn checkpoint_period(&self) -> Option<SimDuration> {
        if self.dirty_rate_gib_per_s == 0.0 {
            return None;
        }
        let period_s = self.max_increment_gib() / self.dirty_rate_gib_per_s;
        Some(SimDuration::secs_f64(period_s))
    }

    /// Duration of the initial full checkpoint (whole memory).
    pub fn full_checkpoint_duration(&self) -> SimDuration {
        SimDuration::secs_f64(self.memory_gib * self.write_s_per_gib)
    }

    /// Duration of the final incremental flush when a revocation warning
    /// arrives `elapsed` after the last background checkpoint. Bounded by
    /// `tau` *by construction* — the Yank invariant.
    pub fn final_write_duration(&self, elapsed: SimDuration) -> SimDuration {
        let dirty_gib = (self.dirty_rate_gib_per_s * elapsed.as_secs_f64())
            .min(self.max_increment_gib())
            .min(self.memory_gib);
        SimDuration::secs_f64(dirty_gib * self.write_s_per_gib).min(self.tau)
    }

    /// Fraction of volume write bandwidth consumed by background
    /// checkpointing in steady state: each period spends up to `tau`
    /// flushing the increment plus the fixed per-checkpoint cost. This is
    /// the Yank trade-off — a smaller bound means shorter forced-migration
    /// flushes but a shorter period, paying the fixed cost more often.
    pub fn background_write_utilization(&self) -> f64 {
        match self.checkpoint_period() {
            None => 0.0,
            Some(period) => {
                let write_time = self.tau.as_secs_f64() + self.fixed_overhead_s;
                (write_time / period.as_secs_f64()).min(1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ckpt() -> BoundedCheckpointer {
        BoundedCheckpointer::new(&VmSpec::paper_2gib(), &VirtParams::typical())
    }

    #[test]
    fn yank_invariant_final_write_never_exceeds_tau() {
        let c = ckpt();
        for secs in [0u64, 1, 10, 100, 1_000, 100_000] {
            let w = c.final_write_duration(SimDuration::secs(secs));
            assert!(w <= c.tau, "elapsed {secs}s -> write {w} > tau {}", c.tau);
        }
    }

    #[test]
    fn period_keeps_increment_at_bound() {
        let c = ckpt();
        let period = c.checkpoint_period().unwrap();
        // Dirty state accumulated over exactly one period flushes in tau.
        let w = c.final_write_duration(period);
        assert!((w.as_secs_f64() - c.tau.as_secs_f64()).abs() < 0.05);
    }

    #[test]
    fn full_checkpoint_is_28s_per_gib() {
        // Paper: 28 s/GB -> 56 s for the 2 GiB VM.
        let c = ckpt();
        let d = c.full_checkpoint_duration().as_secs_f64();
        assert!((d - 56.0).abs() < 1e-9);
    }

    #[test]
    fn idle_vm_needs_no_periodic_checkpoints() {
        let mut vm = VmSpec::paper_2gib();
        vm.dirty_rate_gib_per_s = 0.0;
        let c = BoundedCheckpointer::new(&vm, &VirtParams::typical());
        assert_eq!(c.checkpoint_period(), None);
        assert_eq!(c.background_write_utilization(), 0.0);
        // Final write right after a checkpoint is (near) nothing.
        assert_eq!(
            c.final_write_duration(SimDuration::hours(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn faster_dirtying_means_shorter_period() {
        let p = VirtParams::typical();
        let slow = BoundedCheckpointer::new(&VmSpec::paper_2gib(), &p);
        let mut hot = VmSpec::paper_2gib();
        hot.dirty_rate_gib_per_s = 0.05;
        let fast = BoundedCheckpointer::new(&hot, &p);
        assert!(fast.checkpoint_period().unwrap() < slow.checkpoint_period().unwrap());
        assert!(fast.background_write_utilization() > slow.background_write_utilization());
    }

    #[test]
    fn utilization_capped_at_one() {
        let mut vm = VmSpec::paper_2gib();
        vm.dirty_rate_gib_per_s = 10.0; // dirtier than the link can drain
        let c = BoundedCheckpointer::new(&vm, &VirtParams::typical());
        assert_eq!(c.background_write_utilization(), 1.0);
    }
}
