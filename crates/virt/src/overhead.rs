//! Nested-virtualization performance overhead (§6).
//!
//! The paper measures Xen-Blanket nested VMs against native EC2 VMs:
//! network throughput is indistinguishable, disk I/O loses ~2% (Table 4),
//! and CPU-bound work suffers a *load-dependent* penalty of up to 50%
//! (Figure 12(b)). §6.3 then asks what the worst-case penalty does to the
//! cost savings: halved performance needs roughly doubled capacity.

/// Performance penalties of running inside the nested hypervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NestedOverheadModel {
    /// Fractional disk-throughput loss (Table 4: ~2%).
    pub disk_penalty: f64,
    /// Fractional network-throughput loss (Table 4: ~0–1%).
    pub network_penalty: f64,
    /// Maximum fractional CPU service-demand inflation at full load
    /// (§6.2: "up to a 50% overhead").
    pub cpu_penalty_max: f64,
}

impl NestedOverheadModel {
    /// Values measured in §6 on m3.medium with Xen-Blanket.
    pub fn xen_blanket() -> Self {
        NestedOverheadModel {
            disk_penalty: 0.02,
            network_penalty: 0.005,
            cpu_penalty_max: 0.50,
        }
    }

    /// CPU service-demand multiplier at a given utilisation in `[0,1]`.
    /// The overhead "depends on the load" (§6.2): nested hypervisor exits
    /// contend more under higher pressure. Linear in load, reaching
    /// `1 + cpu_penalty_max` at saturation.
    pub fn cpu_demand_factor(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        1.0 + self.cpu_penalty_max * u
    }

    /// Disk-throughput multiplier (< 1).
    pub fn disk_throughput_factor(&self) -> f64 {
        1.0 - self.disk_penalty
    }

    /// Network-throughput multiplier (< 1).
    pub fn network_throughput_factor(&self) -> f64 {
        1.0 - self.network_penalty
    }

    /// Capacity inflation for a CPU-bound service: how many times more
    /// server capacity is needed to serve the same load (§6.3's worst case
    /// doubles it when performance halves).
    pub fn capacity_inflation(&self, cpu_bound_fraction: f64) -> f64 {
        let f = cpu_bound_fraction.clamp(0.0, 1.0);
        // Worst case: performance halved on the CPU-bound share.
        1.0 + f * (1.0 / (1.0 - self.cpu_penalty_max) - 1.0)
    }

    /// §6.3: scale a normalized cost ratio by the capacity a CPU-bound
    /// workload actually needs. Cost ratios of 17–33% become 34–66% in the
    /// fully-CPU-bound worst case.
    pub fn effective_cost_ratio(&self, base_ratio: f64, cpu_bound_fraction: f64) -> f64 {
        base_ratio * self.capacity_inflation(cpu_bound_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_overheads_match_table4() {
        let m = NestedOverheadModel::xen_blanket();
        assert!((m.disk_throughput_factor() - 0.98).abs() < 1e-12);
        assert!(m.network_throughput_factor() > 0.99);
    }

    #[test]
    fn cpu_factor_is_load_dependent() {
        let m = NestedOverheadModel::xen_blanket();
        assert!((m.cpu_demand_factor(0.0) - 1.0).abs() < 1e-12);
        assert!((m.cpu_demand_factor(1.0) - 1.5).abs() < 1e-12);
        assert!(m.cpu_demand_factor(0.5) < m.cpu_demand_factor(0.9));
        // Clamped outside [0,1].
        assert_eq!(m.cpu_demand_factor(2.0), m.cpu_demand_factor(1.0));
        assert_eq!(m.cpu_demand_factor(-1.0), m.cpu_demand_factor(0.0));
    }

    #[test]
    fn worst_case_capacity_doubles() {
        let m = NestedOverheadModel::xen_blanket();
        assert!((m.capacity_inflation(1.0) - 2.0).abs() < 1e-12);
        assert!((m.capacity_inflation(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn section63_cost_bands() {
        // 17–33% baseline costs double to 34–66% when fully CPU bound.
        let m = NestedOverheadModel::xen_blanket();
        assert!((m.effective_cost_ratio(0.17, 1.0) - 0.34).abs() < 1e-12);
        assert!((m.effective_cost_ratio(0.33, 1.0) - 0.66).abs() < 1e-12);
        // I/O-bound services keep their full savings.
        assert!((m.effective_cost_ratio(0.17, 0.0) - 0.17).abs() < 1e-12);
    }
}
