//! VM restoration from a checkpoint: standard (eager) and lazy.
//!
//! Standard restore reads the whole saved memory image from the network
//! volume before the VM resumes — tens of seconds of downtime for
//! multi-GiB VMs. Lazy restore (Hines & Gopalan VEE'09, SnowFlock
//! EuroSys'09, working-set restore ASPLOS'11) loads only the working set,
//! resumes, and faults the rest in from disk in the background: a ~20 s
//! size-independent resume at the cost of a degraded period.

use crate::params::VirtParams;
use crate::vm::VmSpec;
use spothost_market::time::SimDuration;

/// Result of restoring a VM from its checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestoreOutcome {
    /// Time from restore start until the VM serves requests again — this
    /// is downtime.
    pub resume_latency: SimDuration,
    /// After resuming, the VM runs degraded (page faults hitting the
    /// volume) for this long. Zero for standard restore.
    pub degraded: SimDuration,
}

impl RestoreOutcome {
    /// Stretch the degraded window by `factor` (a lazy-restore page-fault
    /// storm: background fault-in fighting the foreground for volume
    /// bandwidth). Resume latency is unaffected; a factor of 1 is the
    /// identity.
    pub fn inflate_degraded(mut self, factor: f64) -> Self {
        debug_assert!(factor >= 1.0 && factor.is_finite());
        if factor != 1.0 {
            self.degraded = self.degraded.mul_f64(factor);
        }
        self
    }
}

/// Eager restore: read the full image, then resume.
pub fn standard_restore(vm: &VmSpec, params: &VirtParams) -> RestoreOutcome {
    debug_assert!(vm.validate().is_ok());
    RestoreOutcome {
        resume_latency: SimDuration::secs_f64(vm.memory_gib * params.std_restore_s_per_gib),
        degraded: SimDuration::ZERO,
    }
}

/// Lazy restore: load the working set, resume, fault in the rest.
pub fn lazy_restore(vm: &VmSpec, params: &VirtParams) -> RestoreOutcome {
    debug_assert!(vm.validate().is_ok());
    let remaining_gib = (vm.memory_gib - vm.working_set_gib).max(0.0);
    RestoreOutcome {
        // The paper assumes a flat ~20 s resume independent of memory size
        // (measured in [10]); the working set is what that 20 s loads.
        resume_latency: SimDuration::secs_f64(params.lazy_restore_s),
        degraded: SimDuration::secs_f64(remaining_gib * params.lazy_background_s_per_gib),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_restore_is_28s_per_gib() {
        let out = standard_restore(&VmSpec::paper_2gib(), &VirtParams::typical());
        assert!((out.resume_latency.as_secs_f64() - 56.0).abs() < 1e-9);
        assert_eq!(out.degraded, SimDuration::ZERO);
    }

    #[test]
    fn lazy_restore_is_flat_20s() {
        let p = VirtParams::typical();
        let small = lazy_restore(&VmSpec::paper_2gib(), &p);
        let mut big_vm = VmSpec::paper_2gib();
        big_vm.memory_gib = 12.8;
        big_vm.working_set_gib = 1.6;
        let big = lazy_restore(&big_vm, &p);
        // Resume latency independent of size (§4.1).
        assert_eq!(small.resume_latency, big.resume_latency);
        assert!((small.resume_latency.as_secs_f64() - 20.0).abs() < 1e-9);
        // Degraded period grows with size.
        assert!(big.degraded > small.degraded);
    }

    #[test]
    fn lazy_beats_standard_on_downtime_for_large_vms() {
        let p = VirtParams::typical();
        let mut vm = VmSpec::paper_2gib();
        vm.memory_gib = 12.8;
        vm.working_set_gib = 1.6;
        let eager = standard_restore(&vm, &p);
        let lazy = lazy_restore(&vm, &p);
        assert!(lazy.resume_latency < eager.resume_latency);
    }

    #[test]
    fn degraded_window_zero_when_everything_fits_working_set() {
        let p = VirtParams::typical();
        let mut vm = VmSpec::paper_2gib();
        vm.working_set_gib = vm.memory_gib;
        let out = lazy_restore(&vm, &p);
        assert_eq!(out.degraded, SimDuration::ZERO);
    }

    #[test]
    fn inflate_degraded_scales_only_the_degraded_window() {
        let p = VirtParams::typical();
        let base = lazy_restore(&VmSpec::paper_2gib(), &p);
        let stormy = base.inflate_degraded(4.0);
        assert_eq!(stormy.resume_latency, base.resume_latency);
        assert_eq!(stormy.degraded, base.degraded.mul_f64(4.0));
        assert_eq!(base.inflate_degraded(1.0), base);
    }

    #[test]
    fn pessimistic_standard_restore_much_slower() {
        let vm = VmSpec::paper_2gib();
        let t = standard_restore(&vm, &VirtParams::typical());
        let w = standard_restore(&vm, &VirtParams::pessimistic());
        assert!(w.resume_latency.as_secs_f64() > 3.0 * t.resume_latency.as_secs_f64());
    }
}
