//! Iterative pre-copy live migration (Clark et al., NSDI'05).
//!
//! Round 1 transfers all memory; each later round transfers the pages the
//! still-running guest dirtied during the previous round. When the
//! remaining dirty set falls below a threshold (or rounds stop shrinking),
//! the VM pauses, the final set is copied, and execution resumes on the
//! target — that pause is the *downtime*, typically sub-second.

use crate::params::VirtParams;
use crate::vm::VmSpec;
use spothost_market::time::SimDuration;

/// Result of simulating one live migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveMigrationOutcome {
    /// Wall-clock duration from start to completed switchover. The service
    /// keeps running for all of it except `downtime`.
    pub total: SimDuration,
    /// Stop-and-copy pause at the end.
    pub downtime: SimDuration,
    /// Pre-copy rounds executed (including the first full copy).
    pub rounds: u32,
    /// Total GiB moved over the wire.
    pub transferred_gib: f64,
}

/// Cap on pre-copy rounds; if the dirty set has not converged by then, the
/// migration stops anyway and eats the larger downtime (non-convergent
/// workloads dirty memory faster than the link drains it).
const MAX_ROUNDS: u32 = 30;

/// Simulate a live migration of `vm` at effective bandwidth
/// `bandwidth_gib_per_s` (LAN or WAN — the caller picks, see
/// [`crate::wan`]).
pub fn live_migration_with_bandwidth(
    vm: &VmSpec,
    params: &VirtParams,
    bandwidth_gib_per_s: f64,
) -> LiveMigrationOutcome {
    assert!(bandwidth_gib_per_s > 0.0);
    debug_assert!(vm.validate().is_ok());

    let b = bandwidth_gib_per_s;
    let d = vm.dirty_rate_gib_per_s;
    let threshold = params.live_stop_threshold_gib;

    let mut to_send = vm.memory_gib;
    let mut transferred = 0.0;
    let mut copy_time = 0.0f64; // seconds of pre-copy (VM running)
    let mut rounds = 0u32;

    loop {
        rounds += 1;
        // Would this round's leftover be small enough to stop instead?
        if to_send <= threshold || rounds > MAX_ROUNDS {
            break;
        }
        let round_time = to_send / b;
        transferred += to_send;
        copy_time += round_time;
        let next = d * round_time;
        // Dirty set can't exceed total memory.
        let next = next.min(vm.memory_gib);
        // Non-convergence: stop when rounds no longer shrink meaningfully.
        if next >= to_send * 0.95 {
            to_send = next;
            break;
        }
        to_send = next;
    }

    // Stop-and-copy: pause and send the remainder.
    let stop_copy_secs = to_send / b;
    transferred += to_send;
    let downtime = SimDuration::secs_f64(stop_copy_secs).max(params.live_downtime_floor);
    let total = params.live_setup + SimDuration::secs_f64(copy_time) + downtime;

    LiveMigrationOutcome {
        total,
        downtime,
        rounds,
        transferred_gib: transferred,
    }
}

/// LAN live migration at the calibrated Table 2 bandwidth.
pub fn live_migration(vm: &VmSpec, params: &VirtParams) -> LiveMigrationOutcome {
    live_migration_with_bandwidth(vm, params, params.live_bandwidth_gib_per_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lan_latency_for_2gib_vm() {
        // Table 2: live migration of a 2 GB nested VM inside a region takes
        // 57-59 s. Allow 15%.
        let out = live_migration(&VmSpec::paper_2gib(), &VirtParams::typical());
        let total = out.total.as_secs_f64();
        assert!(
            (49.0..68.0).contains(&total),
            "LAN live migration took {total}s, expected ~58s"
        );
    }

    #[test]
    fn typical_downtime_is_subsecond() {
        let out = live_migration(&VmSpec::paper_2gib(), &VirtParams::typical());
        assert!(
            out.downtime.as_secs_f64() < 1.0,
            "downtime {}s",
            out.downtime.as_secs_f64()
        );
        assert!(out.downtime >= VirtParams::typical().live_downtime_floor);
    }

    #[test]
    fn pessimistic_downtime_is_ten_seconds() {
        // §4.3: "pessimistic values of a 10s outage for live migration".
        let out = live_migration(&VmSpec::paper_2gib(), &VirtParams::pessimistic());
        assert!(out.downtime >= SimDuration::secs(10));
    }

    #[test]
    fn multiple_rounds_and_more_transfer_than_memory() {
        let out = live_migration(&VmSpec::paper_2gib(), &VirtParams::typical());
        assert!(out.rounds > 1, "dirtying should force extra rounds");
        assert!(out.transferred_gib > 2.0);
        assert!(out.transferred_gib < 4.0, "convergent workload");
    }

    #[test]
    fn bigger_vm_takes_longer() {
        let p = VirtParams::typical();
        let small = live_migration(&VmSpec::paper_2gib(), &p);
        let mut big_vm = VmSpec::paper_2gib();
        big_vm.memory_gib = 12.0;
        big_vm.working_set_gib = 1.0;
        let big = live_migration(&big_vm, &p);
        assert!(big.total > small.total);
    }

    #[test]
    fn non_convergent_workload_stops_with_large_downtime() {
        let p = VirtParams::typical();
        let mut vm = VmSpec::paper_2gib();
        // Dirtying as fast as the link drains: pre-copy cannot converge.
        vm.dirty_rate_gib_per_s = p.live_bandwidth_gib_per_s;
        let out = live_migration(&vm, &p);
        assert!(
            out.downtime.as_secs_f64() > 5.0,
            "expected a large stop-and-copy, got {}s",
            out.downtime.as_secs_f64()
        );
    }

    #[test]
    fn zero_dirty_rate_single_round() {
        let p = VirtParams::typical();
        let mut vm = VmSpec::paper_2gib();
        vm.dirty_rate_gib_per_s = 0.0;
        let out = live_migration(&vm, &p);
        // One full-copy round, then an (empty) stop-and-copy at the floor.
        assert_eq!(out.rounds, 2);
        assert_eq!(out.downtime, p.live_downtime_floor);
        assert!((out.transferred_gib - 2.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bandwidth_increases_total() {
        let p = VirtParams::typical();
        let vm = VmSpec::paper_2gib();
        let fast = live_migration_with_bandwidth(&vm, &p, 0.05);
        let slow = live_migration_with_bandwidth(&vm, &p, 0.02);
        assert!(slow.total > fast.total);
    }
}
