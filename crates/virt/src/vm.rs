//! The nested VM being migrated.

use spothost_market::types::InstanceType;

/// Memory-side description of the nested virtual machine hosting the
/// service. Migration and checkpointing latencies are driven by how much
/// memory must move and how fast the guest dirties it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmSpec {
    /// Total RAM of the nested VM in GiB.
    pub memory_gib: f64,
    /// Rate at which the running guest dirties memory, GiB/s. An
    /// interactive web stack dirties a few MB/s; the paper's TPC-W
    /// workload is in that class.
    pub dirty_rate_gib_per_s: f64,
    /// Hot working set in GiB — what lazy restore must load before the VM
    /// can make useful progress.
    pub working_set_gib: f64,
}

impl VmSpec {
    /// The 2 GiB nested VM used in the paper's micro-benchmarks (Table 2).
    pub fn paper_2gib() -> Self {
        VmSpec {
            memory_gib: 2.0,
            dirty_rate_gib_per_s: 0.008,
            working_set_gib: 0.25,
        }
    }

    /// A nested VM sized for a given instance type. The nested hypervisor
    /// (dom0) keeps some memory for itself (§6.1 gives 3 GB of an
    /// m3.medium's 3.75 GB to the nested VM), so the guest gets ~80%.
    pub fn for_instance(itype: InstanceType) -> Self {
        let memory_gib = itype.memory_gib() * 0.8;
        VmSpec {
            memory_gib,
            // Dirty rate and working set scale sub-linearly with memory:
            // bigger instances host more data, not proportionally more
            // write-hot state.
            dirty_rate_gib_per_s: 0.008 * (memory_gib / 2.0).sqrt(),
            working_set_gib: (memory_gib * 0.125).max(0.125),
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if !(self.memory_gib > 0.0 && self.memory_gib.is_finite()) {
            return Err(format!(
                "memory_gib must be positive, got {}",
                self.memory_gib
            ));
        }
        if !(self.dirty_rate_gib_per_s >= 0.0 && self.dirty_rate_gib_per_s.is_finite()) {
            return Err("dirty_rate_gib_per_s must be non-negative".into());
        }
        if !(self.working_set_gib > 0.0 && self.working_set_gib <= self.memory_gib) {
            return Err(format!(
                "working_set_gib must be in (0, memory_gib], got {}",
                self.working_set_gib
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vm_validates() {
        VmSpec::paper_2gib().validate().unwrap();
    }

    #[test]
    fn instance_vms_validate_and_scale() {
        let mut prev_mem = 0.0;
        for t in InstanceType::ALL {
            let vm = VmSpec::for_instance(t);
            vm.validate().unwrap();
            assert!(vm.memory_gib > prev_mem);
            assert!(vm.memory_gib < t.memory_gib(), "dom0 must keep memory");
            prev_mem = vm.memory_gib;
        }
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut vm = VmSpec::paper_2gib();
        vm.memory_gib = 0.0;
        assert!(vm.validate().is_err());

        let mut vm = VmSpec::paper_2gib();
        vm.working_set_gib = 100.0;
        assert!(vm.validate().is_err());

        let mut vm = VmSpec::paper_2gib();
        vm.dirty_rate_gib_per_s = -1.0;
        assert!(vm.validate().is_err());
    }
}
