//! The paper's four migration-mechanism combinations (§4.3) and the
//! timing of each migration the scheduler performs.
//!
//! Checkpointing is always on: it is the only thing that saves memory
//! state inside a two-minute revocation warning, so every combination
//! includes it. The combo then chooses whether restores are lazy and
//! whether *voluntary* migrations (planned/reverse) use live migration.
//!
//! | Combo        | forced migration            | planned/reverse          |
//! |--------------|-----------------------------|--------------------------|
//! | CKPT         | ckpt + eager restore        | pre-staged ckpt restore  |
//! | CKPT+LR      | ckpt + lazy restore         | pre-staged lazy restore  |
//! | CKPT+Live    | ckpt + eager restore        | live migration           |
//! | CKPT+LR+Live | ckpt + lazy restore         | live migration           |

use crate::checkpoint::BoundedCheckpointer;
use crate::live::live_migration;
use crate::params::VirtParams;
use crate::restore::{lazy_restore, standard_restore, RestoreOutcome};
use crate::vm::VmSpec;
use crate::wan::{disk_copy_duration, wan_live_migration, RegionPair};
use spothost_market::time::SimDuration;
use spothost_market::types::Region;
use std::fmt;

/// Which of the three migration situations of §3.1 this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKind {
    /// The provider revoked the spot server: the two-minute warning is all
    /// the time there is. Live migration cannot finish in that window for
    /// realistic VMs; the bounded checkpoint is flushed and the VM is
    /// restored on the replacement server.
    Forced,
    /// Voluntary spot -> on-demand (or spot -> cheaper spot) transition at
    /// a billing boundary; arbitrary preparation time is available.
    Planned,
    /// Voluntary on-demand -> spot transition when the spot price drops.
    Reverse,
}

impl MigrationKind {
    pub fn is_voluntary(self) -> bool {
        !matches!(self, MigrationKind::Forced)
    }

    pub fn name(self) -> &'static str {
        match self {
            MigrationKind::Forced => "forced",
            MigrationKind::Planned => "planned",
            MigrationKind::Reverse => "reverse",
        }
    }
}

impl fmt::Display for MigrationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A combination of migration mechanisms (checkpointing is always on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MechanismCombo {
    /// Restore lazily (working set first, fault the rest in).
    pub lazy_restore: bool,
    /// Use live migration for voluntary transitions.
    pub live: bool,
}

impl MechanismCombo {
    /// Memory checkpointing with standard restore.
    pub const CKPT: MechanismCombo = MechanismCombo {
        lazy_restore: false,
        live: false,
    };
    /// Checkpointing with lazy restore.
    pub const CKPT_LR: MechanismCombo = MechanismCombo {
        lazy_restore: true,
        live: false,
    };
    /// Live migration for voluntary moves, checkpoint + eager restore for
    /// forced ones.
    pub const CKPT_LIVE: MechanismCombo = MechanismCombo {
        lazy_restore: false,
        live: true,
    };
    /// The full combination the paper recommends.
    pub const CKPT_LR_LIVE: MechanismCombo = MechanismCombo {
        lazy_restore: true,
        live: true,
    };

    /// All four combos in the order of the paper's Figure 7.
    pub const ALL: [MechanismCombo; 4] = [
        Self::CKPT,
        Self::CKPT_LR,
        Self::CKPT_LIVE,
        Self::CKPT_LR_LIVE,
    ];

    pub fn name(self) -> &'static str {
        match (self.lazy_restore, self.live) {
            (false, false) => "CKPT",
            (true, false) => "CKPT LR",
            (false, true) => "CKPT + Live",
            (true, true) => "CKPT LR + Live",
        }
    }
}

impl fmt::Display for MechanismCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the timing of one migration depends on.
#[derive(Debug, Clone, Copy)]
pub struct MigrationContext {
    pub vm: VmSpec,
    pub from_region: Region,
    pub to_region: Region,
    /// Disk state that must be replicated on cross-region moves, GiB.
    pub disk_gib: f64,
}

impl MigrationContext {
    pub fn local(vm: VmSpec, region: Region) -> Self {
        MigrationContext {
            vm,
            from_region: region,
            to_region: region,
            disk_gib: 0.0,
        }
    }

    pub fn is_cross_region(&self) -> bool {
        self.from_region != self.to_region
    }

    fn pair(&self) -> Option<RegionPair> {
        self.is_cross_region()
            .then(|| RegionPair::new(self.from_region, self.to_region))
    }
}

/// The schedule of one migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationTiming {
    /// Lead time before the switchover during which the service keeps
    /// running on the source (pre-copy rounds, checkpoint pre-staging,
    /// WAN disk replication). The scheduler must start this early.
    pub prepare: SimDuration,
    /// Service outage at switchover.
    pub downtime: SimDuration,
    /// Post-switchover degraded-performance window (lazy restore page
    /// faults).
    pub degraded: SimDuration,
}

/// Compute the timing of a migration under a mechanism combo.
pub fn plan_migration(
    combo: MechanismCombo,
    kind: MigrationKind,
    ctx: &MigrationContext,
    params: &VirtParams,
) -> MigrationTiming {
    debug_assert!(ctx.vm.validate().is_ok());
    debug_assert!(params.validate().is_ok());

    let restore = restore_for(combo, ctx, params);
    let ckpt = BoundedCheckpointer::new(&ctx.vm, params);

    match kind {
        MigrationKind::Forced => {
            // Final bounded flush, then restore on the replacement.
            // The scheduler adds any wait for the replacement server.
            let flush = params.final_ckpt_write();
            MigrationTiming {
                prepare: SimDuration::ZERO,
                downtime: flush + restore.resume_latency,
                degraded: restore.degraded,
            }
        }
        MigrationKind::Planned | MigrationKind::Reverse => {
            let wan_prepare = ctx
                .pair()
                .map_or(SimDuration::ZERO, |p| disk_copy_duration(p, ctx.disk_gib));
            if combo.live {
                let out = match ctx.pair() {
                    None => live_migration(&ctx.vm, params),
                    Some(pair) => wan_live_migration(&ctx.vm, params, pair),
                };
                // Pre-copy may fail to converge when the guest dirties
                // memory as fast as the link drains it; its stop-and-copy
                // then dwarfs a checkpoint switchover. Fall back to the
                // pre-staged checkpoint path whenever that is cheaper —
                // having live migration available can never make a
                // voluntary migration worse.
                let ckpt_combo = MechanismCombo {
                    lazy_restore: combo.lazy_restore,
                    live: false,
                };
                let fallback = plan_migration(ckpt_combo, kind, ctx, params);
                if fallback.downtime < out.downtime {
                    return fallback;
                }
                MigrationTiming {
                    prepare: wan_prepare + out.total - out.downtime,
                    downtime: out.downtime,
                    degraded: SimDuration::ZERO,
                }
            } else {
                // Checkpoint-based voluntary move: the full checkpoint is
                // written and shipped while the service runs; the
                // switchover pays only the pre-staged fraction of the
                // flush + restore.
                let flush = params.final_ckpt_write();
                MigrationTiming {
                    prepare: wan_prepare + ckpt.full_checkpoint_duration(),
                    downtime: (flush + restore.resume_latency).mul_f64(params.prestage_factor),
                    degraded: restore.degraded.mul_f64(params.prestage_factor),
                }
            }
        }
    }
}

/// Timing of a voluntary migration whose live pre-copy **aborted
/// mid-flight** (an injected mechanism fault): the pre-copy rounds
/// already ran, so the preparation window is unchanged, but the
/// switchover falls back to the continuously maintained checkpoint
/// *without* the pre-staging benefit — the target never received the
/// pre-copied state, so it pays the full flush + restore. Never cheaper
/// than the successful plan, and a no-op for combos that don't use live
/// migration (there is nothing to abort).
pub fn plan_migration_live_aborted(
    combo: MechanismCombo,
    kind: MigrationKind,
    ctx: &MigrationContext,
    params: &VirtParams,
) -> MigrationTiming {
    let planned = plan_migration(combo, kind, ctx, params);
    if !combo.live || !kind.is_voluntary() {
        return planned;
    }
    let restore = restore_for(combo, ctx, params);
    let flush = params.final_ckpt_write();
    MigrationTiming {
        prepare: planned.prepare,
        downtime: planned.downtime.max(flush + restore.resume_latency),
        degraded: planned.degraded.max(restore.degraded),
    }
}

/// Restore outcome under the combo, with a WAN penalty when the checkpoint
/// volume lives in another region (reads cross the WAN at disk-copy rates
/// instead of LAN volume rates).
fn restore_for(
    combo: MechanismCombo,
    ctx: &MigrationContext,
    params: &VirtParams,
) -> RestoreOutcome {
    let mut out = if combo.lazy_restore {
        lazy_restore(&ctx.vm, params)
    } else {
        standard_restore(&ctx.vm, params)
    };
    if let Some(pair) = ctx.pair() {
        let penalty = crate::wan::disk_copy_s_per_gib(pair) / params.std_restore_s_per_gib;
        let penalty = penalty.max(1.0);
        out.resume_latency = out.resume_latency.mul_f64(penalty);
        out.degraded = out.degraded.mul_f64(penalty);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MigrationContext {
        MigrationContext::local(VmSpec::paper_2gib(), Region::UsEast1)
    }

    #[test]
    fn combo_names_match_figure7() {
        let names: Vec<&str> = MechanismCombo::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["CKPT", "CKPT LR", "CKPT + Live", "CKPT LR + Live"]);
    }

    #[test]
    fn forced_downtime_ordering_between_combos() {
        // Lazy restore must shrink forced downtime (it is the entire point
        // of §4.3): CKPT forced ~ 5 + 56 = 61 s; CKPT_LR forced ~ 5 + 20 = 25 s.
        let p = VirtParams::typical();
        let eager = plan_migration(MechanismCombo::CKPT, MigrationKind::Forced, &ctx(), &p);
        let lazy = plan_migration(MechanismCombo::CKPT_LR, MigrationKind::Forced, &ctx(), &p);
        assert!(lazy.downtime < eager.downtime);
        assert!((eager.downtime.as_secs_f64() - 61.0).abs() < 2.0);
        assert!((lazy.downtime.as_secs_f64() - 25.0).abs() < 2.0);
        // Live makes no difference to forced migrations.
        let live = plan_migration(MechanismCombo::CKPT_LIVE, MigrationKind::Forced, &ctx(), &p);
        assert_eq!(live.downtime, eager.downtime);
    }

    #[test]
    fn planned_with_live_has_subsecond_downtime() {
        let p = VirtParams::typical();
        let out = plan_migration(
            MechanismCombo::CKPT_LR_LIVE,
            MigrationKind::Planned,
            &ctx(),
            &p,
        );
        assert!(out.downtime.as_secs_f64() < 1.0);
        assert!(out.prepare.as_secs_f64() > 30.0, "pre-copy takes time");
        assert_eq!(out.degraded, SimDuration::ZERO);
    }

    #[test]
    fn planned_without_live_prestaged_downtime() {
        let p = VirtParams::typical();
        let out = plan_migration(MechanismCombo::CKPT_LR, MigrationKind::Planned, &ctx(), &p);
        // 0.25 * (5 + 20) ~ 6.2 s.
        assert!(out.downtime.as_secs_f64() > 2.0 && out.downtime.as_secs_f64() < 10.0);
        // Pre-stage requires writing the full checkpoint first.
        assert!(out.prepare >= SimDuration::secs(56));
    }

    #[test]
    fn lazy_restore_brings_degraded_window() {
        let p = VirtParams::typical();
        let lazy = plan_migration(MechanismCombo::CKPT_LR, MigrationKind::Forced, &ctx(), &p);
        assert!(lazy.degraded > SimDuration::ZERO);
        let eager = plan_migration(MechanismCombo::CKPT, MigrationKind::Forced, &ctx(), &p);
        assert_eq!(eager.degraded, SimDuration::ZERO);
    }

    #[test]
    fn reverse_same_timing_as_planned() {
        let p = VirtParams::typical();
        for combo in MechanismCombo::ALL {
            let a = plan_migration(combo, MigrationKind::Planned, &ctx(), &p);
            let b = plan_migration(combo, MigrationKind::Reverse, &ctx(), &p);
            assert_eq!(a, b, "{combo}");
        }
    }

    #[test]
    fn cross_region_adds_disk_copy_to_prepare() {
        let p = VirtParams::typical();
        let mut c = ctx();
        c.to_region = Region::UsWest1;
        c.disk_gib = 4.0;
        let wan = plan_migration(MechanismCombo::CKPT_LR_LIVE, MigrationKind::Planned, &c, &p);
        let lan = plan_migration(
            MechanismCombo::CKPT_LR_LIVE,
            MigrationKind::Planned,
            &ctx(),
            &p,
        );
        // 4 GiB * 122.4 s/GiB of disk replication lands in prepare.
        assert!(wan.prepare > lan.prepare + SimDuration::secs(400));
    }

    #[test]
    fn cross_region_forced_restore_pays_wan_penalty() {
        let p = VirtParams::typical();
        let mut c = ctx();
        c.to_region = Region::EuWest1;
        let wan = plan_migration(MechanismCombo::CKPT, MigrationKind::Forced, &c, &p);
        let lan = plan_migration(MechanismCombo::CKPT, MigrationKind::Forced, &ctx(), &p);
        assert!(wan.downtime > lan.downtime);
    }

    #[test]
    fn pessimistic_worse_than_typical_everywhere() {
        let t = VirtParams::typical();
        let w = VirtParams::pessimistic();
        for combo in MechanismCombo::ALL {
            for kind in [MigrationKind::Forced, MigrationKind::Planned] {
                let a = plan_migration(combo, kind, &ctx(), &t);
                let b = plan_migration(combo, kind, &ctx(), &w);
                assert!(b.downtime >= a.downtime, "{combo} {kind}");
            }
        }
    }

    #[test]
    fn aborted_live_migration_never_beats_success() {
        let p = VirtParams::typical();
        for combo in MechanismCombo::ALL {
            for kind in [MigrationKind::Planned, MigrationKind::Reverse] {
                let ok = plan_migration(combo, kind, &ctx(), &p);
                let aborted = plan_migration_live_aborted(combo, kind, &ctx(), &p);
                assert!(aborted.downtime >= ok.downtime, "{combo} {kind}");
                assert_eq!(aborted.prepare, ok.prepare, "{combo} {kind}");
                if !combo.live {
                    assert_eq!(aborted, ok, "nothing to abort without live");
                }
            }
        }
        // With live enabled the fallback pays the full (un-prestaged)
        // flush + restore, which is strictly worse than the sub-second
        // live switchover.
        let ok = plan_migration(
            MechanismCombo::CKPT_LR_LIVE,
            MigrationKind::Planned,
            &ctx(),
            &VirtParams::typical(),
        );
        let aborted = plan_migration_live_aborted(
            MechanismCombo::CKPT_LR_LIVE,
            MigrationKind::Planned,
            &ctx(),
            &VirtParams::typical(),
        );
        assert!(aborted.downtime > ok.downtime.mul_f64(2.0));
    }

    #[test]
    fn figure7_downtime_ordering_across_combos() {
        // Forced+planned weighted mix must order the combos as Figure 7:
        // CKPT > CKPT+Live > CKPT LR > CKPT LR+Live, using the paper's
        // observation that planned migrations outnumber forced ones.
        let p = VirtParams::typical();
        // Weights from the calibrated proactive run in us-east-1a/small:
        // ~3.6 forced and ~17 planned/reverse migrations per month.
        let mix = |combo: MechanismCombo| {
            let f = plan_migration(combo, MigrationKind::Forced, &ctx(), &p);
            let v = plan_migration(combo, MigrationKind::Planned, &ctx(), &p);
            f.downtime.as_secs_f64() * 3.6 + v.downtime.as_secs_f64() * 17.0
        };
        let ckpt = mix(MechanismCombo::CKPT);
        let lr = mix(MechanismCombo::CKPT_LR);
        let live = mix(MechanismCombo::CKPT_LIVE);
        let lr_live = mix(MechanismCombo::CKPT_LR_LIVE);
        assert!(ckpt > live, "CKPT {ckpt} vs CKPT+Live {live}");
        assert!(live > lr, "CKPT+Live {live} vs CKPT LR {lr}");
        assert!(lr > lr_live, "CKPT LR {lr} vs CKPT LR+Live {lr_live}");
    }
}
