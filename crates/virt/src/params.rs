//! Mechanism timing parameters: the paper's *typical* (measured, Table 2)
//! and *pessimistic* (worst-case, §4.3) regimes.

use spothost_market::time::SimDuration;

/// Which end of the measured spectrum to model (Figure 7 reports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamRegime {
    /// The paper's measured values (Table 2, §4.1).
    Typical,
    /// Worst cases from §4.3: 10 s live-migration outage (paper refs 8, 15),
    /// whole-memory copy on restore, no benefit from pre-staging.
    Pessimistic,
}

/// Timing constants of the virtualization mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtParams {
    /// Sequential write rate of memory checkpoints to a network volume,
    /// seconds per GiB. Paper: "a latency of 28s per GB of memory state".
    pub ckpt_write_s_per_gib: f64,
    /// Standard (eager) restore read rate, seconds per GiB. Paper: "VM
    /// restoration latencies which read this data back from disk are
    /// similar".
    pub std_restore_s_per_gib: f64,
    /// Lazy-restore resume latency, independent of memory size (paper §4.1
    /// assumes 20 s based on its ref 10).
    pub lazy_restore_s: f64,
    /// While lazily restoring, the VM runs degraded until the background
    /// load completes, at this read rate (s/GiB).
    pub lazy_background_s_per_gib: f64,
    /// Effective pre-copy bandwidth of LAN live migration, GiB/s.
    /// Calibrated so a 2 GiB nested VM live-migrates in ~58 s (Table 2).
    pub live_bandwidth_gib_per_s: f64,
    /// Fixed setup/handshake cost of a live migration.
    pub live_setup: SimDuration,
    /// Remaining-dirty-state threshold at which pre-copy stops and the VM
    /// pauses for the final copy, GiB.
    pub live_stop_threshold_gib: f64,
    /// Hard floor on live-migration downtime (switchover cost).
    pub live_downtime_floor: SimDuration,
    /// Yank bound `tau`: the final incremental checkpoint write always
    /// completes within this duration. Must fit the two-minute revocation
    /// grace with room for suspend/teardown.
    pub yank_bound: SimDuration,
    /// Expected final incremental write as a fraction of `tau` (a
    /// revocation lands mid-cycle; 0.5 in expectation, 1.0 pessimistic).
    pub yank_fill_factor: f64,
    /// Fixed cost of each background checkpoint (snapshot setup, metadata,
    /// brief guest stun), seconds. This is what makes very small Yank
    /// bounds expensive: the checkpoint period shrinks linearly with
    /// `tau`, so the fixed cost is paid more often.
    pub ckpt_fixed_overhead_s: f64,
    /// Planned (voluntary) checkpoint-based migrations pre-stage: the
    /// destination is booted in advance and the checkpoint is pre-copied,
    /// so the switchover pays only this fraction of the restore cost.
    /// 1.0 pessimistic (no benefit).
    pub prestage_factor: f64,
}

impl VirtParams {
    pub fn typical() -> Self {
        VirtParams {
            ckpt_write_s_per_gib: 28.0,
            std_restore_s_per_gib: 28.0,
            lazy_restore_s: 20.0,
            lazy_background_s_per_gib: 28.0,
            // 2 GiB / 0.05 GiB/s = 40 s of first-round copy; with dirty
            // rounds and setup this lands near Table 2's 57-59 s.
            live_bandwidth_gib_per_s: 0.05,
            live_setup: SimDuration::secs(10),
            live_stop_threshold_gib: 0.016,
            live_downtime_floor: SimDuration::millis(200),
            yank_bound: SimDuration::secs(10),
            yank_fill_factor: 0.5,
            ckpt_fixed_overhead_s: 0.5,
            prestage_factor: 0.10,
        }
    }

    pub fn pessimistic() -> Self {
        VirtParams {
            // Worst-case restore: "copying the whole memory ... less than
            // 120s inside a region" for 2 GiB -> 60 s/GiB; we double it to
            // 120 s/GiB to capture contended network disks, which is what
            // drives Figure 7's pessimistic CKPT bar an order of magnitude
            // above the others.
            std_restore_s_per_gib: 120.0,
            lazy_restore_s: 20.0,
            lazy_background_s_per_gib: 120.0,
            live_downtime_floor: SimDuration::secs(10),
            live_stop_threshold_gib: 0.5,
            yank_fill_factor: 1.0,
            ckpt_fixed_overhead_s: 2.0,
            prestage_factor: 1.0,
            ..Self::typical()
        }
    }

    pub fn for_regime(regime: ParamRegime) -> Self {
        match regime {
            ParamRegime::Typical => Self::typical(),
            ParamRegime::Pessimistic => Self::pessimistic(),
        }
    }

    /// Final incremental checkpoint write duration under the Yank bound.
    pub fn final_ckpt_write(&self) -> SimDuration {
        self.yank_bound.mul_f64(self.yank_fill_factor)
    }

    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("ckpt_write_s_per_gib", self.ckpt_write_s_per_gib),
            ("std_restore_s_per_gib", self.std_restore_s_per_gib),
            ("lazy_restore_s", self.lazy_restore_s),
            ("lazy_background_s_per_gib", self.lazy_background_s_per_gib),
            ("live_bandwidth_gib_per_s", self.live_bandwidth_gib_per_s),
            ("live_stop_threshold_gib", self.live_stop_threshold_gib),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if !(self.ckpt_fixed_overhead_s >= 0.0 && self.ckpt_fixed_overhead_s.is_finite()) {
            return Err("ckpt_fixed_overhead_s must be non-negative".into());
        }
        if !(0.0..=1.0).contains(&self.yank_fill_factor) {
            return Err("yank_fill_factor must lie in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.prestage_factor) {
            return Err("prestage_factor must lie in [0,1]".into());
        }
        if self.yank_bound == SimDuration::ZERO {
            return Err("yank_bound must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_regimes_validate() {
        VirtParams::typical().validate().unwrap();
        VirtParams::pessimistic().validate().unwrap();
    }

    #[test]
    fn pessimistic_is_uniformly_worse() {
        let t = VirtParams::typical();
        let p = VirtParams::pessimistic();
        assert!(p.std_restore_s_per_gib > t.std_restore_s_per_gib);
        assert!(p.live_downtime_floor > t.live_downtime_floor);
        assert!(p.final_ckpt_write() > t.final_ckpt_write());
        assert!(p.prestage_factor > t.prestage_factor);
    }

    #[test]
    fn yank_final_write_within_bound() {
        for regime in [ParamRegime::Typical, ParamRegime::Pessimistic] {
            let p = VirtParams::for_regime(regime);
            assert!(p.final_ckpt_write() <= p.yank_bound);
        }
    }

    #[test]
    fn yank_bound_fits_revocation_grace() {
        // tau must leave room within the 2-minute warning for the
        // replacement request and suspend.
        let grace = SimDuration::secs(120);
        for regime in [ParamRegime::Typical, ParamRegime::Pessimistic] {
            let p = VirtParams::for_regime(regime);
            assert!(p.yank_bound < grace);
        }
    }
}
