//! # spothost-virt
//!
//! Models of the four OS-level mechanisms the paper's cloud scheduler
//! combines (§3.2), parameterised by the paper's own micro-benchmark
//! measurements (Tables 1–2) on Xen-Blanket nested VMs in EC2:
//!
//! * **Nested virtualization** — running the service inside a nested VM
//!   gives the customer migration control the cloud provider doesn't
//!   expose; it costs a small I/O penalty and a load-dependent CPU penalty
//!   (§6, [`overhead`]).
//! * **Live migration** — iterative pre-copy (Clark et al., NSDI'05):
//!   memory pages stream to the target over several rounds while the VM
//!   runs; sub-second stop-and-copy downtime in the typical case
//!   ([`live`]).
//! * **Bounded memory checkpointing** — Yank-style (NSDI'13) background
//!   incremental checkpointing to a network volume, tuned so the final
//!   incremental write always fits a bound `tau` — and therefore fits a
//!   spot server's two-minute revocation warning ([`checkpoint`]).
//! * **Lazy restore** — resume from a checkpoint after loading only the
//!   working set, faulting the rest in from the volume in the background
//!   (SnowFlock/working-set restore; ~20 s flat, [`restore`]).
//!
//! [`mechanism`] combines them into the paper's four evaluated combos and
//! answers, for each migration the scheduler performs, *how long it takes
//! to prepare, how long the service is down, and how long it runs
//! degraded*.

// Library code must not unwrap: every remaining panic site is either an
// invariant with an explanatory expect message or a documented
// precondition (see DESIGN.md "Failure semantics").
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod checkpoint;
pub mod live;
pub mod mechanism;
pub mod overhead;
pub mod params;
pub mod restore;
pub mod vm;
pub mod wan;

pub use checkpoint::BoundedCheckpointer;
pub use live::{live_migration, LiveMigrationOutcome};
pub use mechanism::{
    plan_migration, plan_migration_live_aborted, MechanismCombo, MigrationContext, MigrationKind,
    MigrationTiming,
};
pub use overhead::NestedOverheadModel;
pub use params::{ParamRegime, VirtParams};
pub use restore::{lazy_restore, standard_restore, RestoreOutcome};
pub use vm::VmSpec;
pub use wan::{disk_copy_duration, RegionPair};
