//! Cross-region (WAN) migration, parameterised by Table 2.
//!
//! WAN migrations differ from LAN ones in two ways (§4, footnote 2):
//! the pre-copy runs over a slower inter-datacenter path, and disk state
//! must be copied too because network volumes don't span regions —
//! Table 2 measures 122–172 s per GiB of disk between region pairs.

use crate::live::{live_migration_with_bandwidth, LiveMigrationOutcome};
use crate::params::VirtParams;
use crate::vm::VmSpec;
use spothost_market::time::SimDuration;
use spothost_market::types::Region;

/// An unordered pair of distinct regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionPair(Region, Region);

impl RegionPair {
    /// Build a pair; panics if both regions are equal (that's a LAN move).
    pub fn new(a: Region, b: Region) -> Self {
        assert_ne!(a, b, "a region pair needs two distinct regions");
        // Canonical order for symmetric lookup.
        if (a as usize) <= (b as usize) {
            RegionPair(a, b)
        } else {
            RegionPair(b, a)
        }
    }

    pub fn regions(&self) -> (Region, Region) {
        (self.0, self.1)
    }

    fn classify(&self) -> PairClass {
        use Region::*;
        match (self.0, self.1) {
            (UsEast1, UsWest1) | (UsWest1, UsEast1) => PairClass::EastWest,
            (UsEast1, EuWest1) | (EuWest1, UsEast1) => PairClass::EastEu,
            (UsWest1, EuWest1) | (EuWest1, UsWest1) => PairClass::WestEu,
            _ => unreachable!("regions are distinct"),
        }
    }
}

enum PairClass {
    EastWest,
    EastEu,
    WestEu,
}

/// Fixed WAN setup/handshake latency (higher RTT than LAN).
const WAN_SETUP: SimDuration = SimDuration(15 * 1000);

/// Effective WAN pre-copy bandwidth, GiB/s, calibrated so a 2 GiB VM
/// live-migrates in Table 2's 73.7 / 74.6 / 140.2 seconds.
fn wan_bandwidth_gib_per_s(pair: RegionPair) -> f64 {
    match pair.classify() {
        PairClass::EastWest => 0.042,
        PairClass::EastEu => 0.041,
        PairClass::WestEu => 0.024,
    }
}

/// Disk-state copy rate between regions, s/GiB (Table 2: "cross-datacenter
/// copying of disk state take between 2 to 3 minutes per GB").
pub fn disk_copy_s_per_gib(pair: RegionPair) -> f64 {
    match pair.classify() {
        PairClass::EastWest => 122.4,
        PairClass::EastEu => 140.5,
        PairClass::WestEu => 171.6,
    }
}

/// Total time to copy `disk_gib` of disk state across a region pair.
/// Runs concurrently with the service (background replication), so it
/// extends migration *preparation*, not downtime.
pub fn disk_copy_duration(pair: RegionPair, disk_gib: f64) -> SimDuration {
    assert!(disk_gib >= 0.0);
    SimDuration::secs_f64(disk_gib * disk_copy_s_per_gib(pair))
}

/// Live-migrate a VM across regions: the pre-copy model at WAN bandwidth
/// with WAN setup costs.
pub fn wan_live_migration(
    vm: &VmSpec,
    params: &VirtParams,
    pair: RegionPair,
) -> LiveMigrationOutcome {
    let mut p = params.clone();
    p.live_setup = WAN_SETUP;
    live_migration_with_bandwidth(vm, &p, wan_bandwidth_gib_per_s(pair))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs() -> [(RegionPair, f64); 3] {
        [
            (RegionPair::new(Region::UsEast1, Region::UsWest1), 73.7),
            (RegionPair::new(Region::UsEast1, Region::EuWest1), 74.6),
            (RegionPair::new(Region::UsWest1, Region::EuWest1), 140.2),
        ]
    }

    #[test]
    fn wan_live_matches_table2_within_15_percent() {
        let vm = VmSpec::paper_2gib();
        let params = VirtParams::typical();
        for (pair, expected) in pairs() {
            let out = wan_live_migration(&vm, &params, pair);
            let got = out.total.as_secs_f64();
            assert!(
                (got - expected).abs() / expected < 0.15,
                "{pair:?}: {got}s vs Table 2 {expected}s"
            );
        }
    }

    #[test]
    fn disk_copy_rates_match_table2() {
        let p = RegionPair::new(Region::UsEast1, Region::UsWest1);
        assert!((disk_copy_duration(p, 1.0).as_secs_f64() - 122.4).abs() < 1e-9);
        let p = RegionPair::new(Region::UsWest1, Region::EuWest1);
        assert!((disk_copy_duration(p, 2.0).as_secs_f64() - 343.2).abs() < 1e-9);
    }

    #[test]
    fn pair_is_symmetric() {
        let a = RegionPair::new(Region::UsEast1, Region::EuWest1);
        let b = RegionPair::new(Region::EuWest1, Region::UsEast1);
        assert_eq!(a, b);
        assert_eq!(disk_copy_s_per_gib(a), disk_copy_s_per_gib(b));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_region_pair_rejected() {
        RegionPair::new(Region::UsEast1, Region::UsEast1);
    }

    #[test]
    fn wan_slower_than_lan() {
        let vm = VmSpec::paper_2gib();
        let params = VirtParams::typical();
        let lan = crate::live::live_migration(&vm, &params);
        for (pair, _) in pairs() {
            let wan = wan_live_migration(&vm, &params, pair);
            assert!(wan.total > lan.total, "{pair:?}");
        }
    }
}
