//! Figure 12: TPC-W response time vs number of emulated browsers.

use crate::mva::ClosedNetwork;
use crate::tpcw::{tpcw_network, NestedPenalties, Platform, TpcwConfig};

/// One point on a Figure 12 curve pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponsePoint {
    /// Emulated-browser population.
    pub ebs: u32,
    /// Native-platform mean response time, milliseconds.
    pub native_ms: f64,
    /// Nested-platform mean response time, milliseconds.
    pub nested_ms: f64,
}

impl ResponsePoint {
    /// Nested/native response-time ratio.
    pub fn overhead_ratio(&self) -> f64 {
        if self.native_ms == 0.0 {
            1.0
        } else {
            self.nested_ms / self.native_ms
        }
    }
}

fn solve_ms(net: &ClosedNetwork, ebs: u32) -> f64 {
    net.solve(ebs).response_s * 1_000.0
}

/// Compute the Figure 12 curves at the given EB populations.
pub fn response_curve(cfg: TpcwConfig, ebs: &[u32]) -> Vec<ResponsePoint> {
    let pen = NestedPenalties::xen_blanket();
    ebs.iter()
        .map(|&n| {
            let native = tpcw_network(cfg, Platform::Native, &pen, n);
            let nested = tpcw_network(cfg, Platform::Nested, &pen, n);
            ResponsePoint {
                ebs: n,
                native_ms: solve_ms(&native, n),
                nested_ms: solve_ms(&nested, n),
            }
        })
        .collect()
}

/// The EB populations of Figure 12's x-axis.
pub const FIGURE12_EBS: [u32; 7] = [100, 150, 200, 250, 300, 350, 400];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_images_curves_overlap() {
        // Figure 12(a): nested ~ native when the benchmark is I/O bound.
        for p in response_curve(TpcwConfig::WithImages, &FIGURE12_EBS) {
            assert!(
                p.overhead_ratio() < 1.10,
                "at {} EBs nested/native = {}",
                p.ebs,
                p.overhead_ratio()
            );
        }
    }

    #[test]
    fn no_images_nested_up_to_50_percent_worse() {
        // Figure 12(b): the gap grows with load, up to ~50%+ at 400 EBs.
        let curve = response_curve(TpcwConfig::NoImages, &FIGURE12_EBS);
        let first = curve.first().unwrap();
        let last = curve.last().unwrap();
        assert!(last.overhead_ratio() > first.overhead_ratio());
        assert!(
            first.overhead_ratio() < 1.15,
            "light-load overhead {}",
            first.overhead_ratio()
        );
        // A 50% CPU-demand inflation amplifies into a larger response-time
        // gap once the closed network saturates.
        assert!(
            (1.3..2.6).contains(&last.overhead_ratio()),
            "saturated overhead ratio {}",
            last.overhead_ratio()
        );
    }

    #[test]
    fn response_grows_with_load() {
        for cfg in [TpcwConfig::WithImages, TpcwConfig::NoImages] {
            let curve = response_curve(cfg, &FIGURE12_EBS);
            for w in curve.windows(2) {
                assert!(w[1].native_ms >= w[0].native_ms);
                assert!(w[1].nested_ms >= w[0].nested_ms);
            }
        }
    }

    #[test]
    fn with_images_slower_than_without_at_same_load() {
        // Shipping images through the server costs I/O time, so absolute
        // response times in Figure 12(a) dwarf 12(b)'s.
        let imgs = response_curve(TpcwConfig::WithImages, &[400]);
        let no = response_curve(TpcwConfig::NoImages, &[400]);
        assert!(imgs[0].native_ms > no[0].native_ms);
    }

    #[test]
    fn magnitudes_in_figure12_range() {
        // At 400 EBs the paper's curves sit at seconds to tens of seconds.
        let imgs = response_curve(TpcwConfig::WithImages, &[400]);
        assert!(imgs[0].native_ms > 3_000.0 && imgs[0].native_ms < 40_000.0);
        let no = response_curve(TpcwConfig::NoImages, &[400]);
        assert!(no[0].nested_ms > 1_000.0 && no[0].nested_ms < 20_000.0);
    }
}
