//! Exact Mean-Value Analysis for closed product-form queueing networks
//! (Reiser & Lavenberg 1980).
//!
//! A population of N jobs (emulated browsers) cycles through a think-time
//! delay and a set of queueing stations. The exact recursion over
//! population sizes:
//!
//! ```text
//! R_i(n) = D_i * (1 + Q_i(n-1))         response at station i
//! X(n)   = n / (Z + sum_i R_i(n))       system throughput
//! Q_i(n) = X(n) * R_i(n)                mean queue at station i
//! ```

/// One queueing station with its aggregate per-job service demand.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    pub name: String,
    /// Total service demand per job, in seconds (visit count x per-visit
    /// service time).
    pub demand_s: f64,
}

impl Station {
    pub fn new(name: impl Into<String>, demand_s: f64) -> Self {
        assert!(demand_s >= 0.0 && demand_s.is_finite());
        Station {
            name: name.into(),
            demand_s,
        }
    }
}

/// A closed queueing network: stations plus a think-time delay.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedNetwork {
    pub stations: Vec<Station>,
    /// Think time between requests (delay station), seconds.
    pub think_time_s: f64,
}

/// Solution of the network at a given population.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaResult {
    /// Mean response time per request (excluding think time), seconds.
    pub response_s: f64,
    /// System throughput, requests/second.
    pub throughput: f64,
    /// Mean queue length per station.
    pub queue_lengths: Vec<f64>,
    /// Utilisation per station.
    pub utilizations: Vec<f64>,
}

impl ClosedNetwork {
    pub fn new(stations: Vec<Station>, think_time_s: f64) -> Self {
        assert!(!stations.is_empty(), "network needs at least one station");
        assert!(think_time_s >= 0.0 && think_time_s.is_finite());
        ClosedNetwork {
            stations,
            think_time_s,
        }
    }

    /// The bottleneck service demand (max over stations).
    pub fn bottleneck_demand(&self) -> f64 {
        self.stations.iter().map(|s| s.demand_s).fold(0.0, f64::max)
    }

    /// Asymptotic maximum throughput, `1 / D_max`.
    pub fn max_throughput(&self) -> f64 {
        1.0 / self.bottleneck_demand()
    }

    /// Exact MVA at population `n`.
    pub fn solve(&self, n: u32) -> MvaResult {
        let k = self.stations.len();
        let mut q = vec![0.0f64; k];
        let mut r = vec![0.0f64; k];
        let mut x = 0.0f64;
        for pop in 1..=n {
            let mut r_total = 0.0;
            for i in 0..k {
                r[i] = self.stations[i].demand_s * (1.0 + q[i]);
                r_total += r[i];
            }
            x = pop as f64 / (self.think_time_s + r_total);
            for i in 0..k {
                q[i] = x * r[i];
            }
        }
        let response_s = if n == 0 {
            0.0
        } else {
            n as f64 / x - self.think_time_s
        };
        let utilizations = self
            .stations
            .iter()
            .map(|s| (x * s.demand_s).min(1.0))
            .collect();
        MvaResult {
            response_s: response_s.max(0.0),
            throughput: x,
            queue_lengths: q,
            utilizations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(demand: f64, think: f64) -> ClosedNetwork {
        ClosedNetwork::new(vec![Station::new("cpu", demand)], think)
    }

    #[test]
    fn one_job_sees_raw_demand() {
        let net = single(0.05, 2.0);
        let r = net.solve(1);
        assert!((r.response_s - 0.05).abs() < 1e-12);
        assert!((r.throughput - 1.0 / 2.05).abs() < 1e-12);
    }

    #[test]
    fn throughput_saturates_at_inverse_bottleneck() {
        let net = single(0.05, 2.0);
        let r = net.solve(1_000);
        assert!((r.throughput - 20.0).abs() < 0.01, "X {}", r.throughput);
        // Heavy load: R ~ N*D - Z.
        let expect = 1_000.0 * 0.05 - 2.0;
        assert!((r.response_s - expect).abs() / expect < 0.01);
        assert!((r.utilizations[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn response_monotone_in_population() {
        let net = ClosedNetwork::new(
            vec![Station::new("cpu", 0.016), Station::new("io", 0.005)],
            2.0,
        );
        let mut prev = 0.0;
        for n in [1, 50, 100, 200, 400] {
            let r = net.solve(n).response_s;
            assert!(r >= prev, "response must grow with load");
            prev = r;
        }
    }

    #[test]
    fn light_load_response_near_total_demand() {
        // With plenty of think time and few jobs, no queueing happens.
        let net = ClosedNetwork::new(
            vec![Station::new("cpu", 0.01), Station::new("io", 0.02)],
            100.0,
        );
        let r = net.solve(10);
        assert!((r.response_s - 0.03).abs() < 0.001);
    }

    #[test]
    fn bottleneck_station_dominates_queueing() {
        let net = ClosedNetwork::new(
            vec![Station::new("cpu", 0.05), Station::new("io", 0.01)],
            1.0,
        );
        let r = net.solve(200);
        assert!(r.queue_lengths[0] > 10.0 * r.queue_lengths[1]);
        assert!(r.utilizations[0] > r.utilizations[1]);
    }

    #[test]
    fn zero_population() {
        let net = single(0.05, 2.0);
        let r = net.solve(0);
        assert_eq!(r.response_s, 0.0);
        assert_eq!(r.throughput, 0.0);
    }

    #[test]
    fn utilization_scales_with_demand() {
        let slow = single(0.05, 2.0).solve(30);
        let fast = single(0.025, 2.0).solve(30);
        assert!(slow.utilizations[0] > fast.utilizations[0]);
        assert!(slow.response_s > fast.response_s);
    }
}
