//! Exact Mean-Value Analysis for closed product-form queueing networks
//! (Reiser & Lavenberg 1980).
//!
//! A population of N jobs (emulated browsers) cycles through a think-time
//! delay and a set of queueing stations. The exact recursion over
//! population sizes:
//!
//! ```text
//! R_i(n) = D_i * (1 + Q_i(n-1))         response at station i
//! X(n)   = n / (Z + sum_i R_i(n))       system throughput
//! Q_i(n) = X(n) * R_i(n)                mean queue at station i
//! ```

/// One queueing station with its aggregate per-job service demand.
#[derive(Debug, Clone, PartialEq)]
pub struct Station {
    /// Display name ("cpu", "io", ...).
    pub name: String,
    /// Total service demand per job, in seconds (visit count x per-visit
    /// service time).
    pub demand_s: f64,
}

impl Station {
    /// A station with a total per-job service demand (seconds). Panics
    /// on negative or non-finite demand.
    pub fn new(name: impl Into<String>, demand_s: f64) -> Self {
        assert!(demand_s >= 0.0 && demand_s.is_finite());
        Station {
            name: name.into(),
            demand_s,
        }
    }
}

/// A closed queueing network: stations plus a think-time delay.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedNetwork {
    /// Queueing stations jobs visit each cycle.
    pub stations: Vec<Station>,
    /// Think time between requests (delay station), seconds.
    pub think_time_s: f64,
}

/// Solution of the network at a given population.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaResult {
    /// Mean response time per request (excluding think time), seconds.
    pub response_s: f64,
    /// System throughput, requests/second.
    pub throughput: f64,
    /// Mean queue length per station.
    pub queue_lengths: Vec<f64>,
    /// Utilisation per station.
    pub utilizations: Vec<f64>,
}

impl ClosedNetwork {
    /// A network from stations plus a think-time delay. Panics on an
    /// empty station list or a negative/non-finite think time.
    pub fn new(stations: Vec<Station>, think_time_s: f64) -> Self {
        assert!(!stations.is_empty(), "network needs at least one station");
        assert!(think_time_s >= 0.0 && think_time_s.is_finite());
        ClosedNetwork {
            stations,
            think_time_s,
        }
    }

    /// The bottleneck service demand (max over stations).
    pub fn bottleneck_demand(&self) -> f64 {
        self.stations.iter().map(|s| s.demand_s).fold(0.0, f64::max)
    }

    /// Asymptotic maximum throughput, `1 / D_max`.
    pub fn max_throughput(&self) -> f64 {
        1.0 / self.bottleneck_demand()
    }

    /// Exact MVA at population `n`.
    pub fn solve(&self, n: u32) -> MvaResult {
        let k = self.stations.len();
        let mut q = vec![0.0f64; k];
        let mut r = vec![0.0f64; k];
        let mut x = 0.0f64;
        for pop in 1..=n {
            let mut r_total = 0.0;
            for i in 0..k {
                r[i] = self.stations[i].demand_s * (1.0 + q[i]);
                r_total += r[i];
            }
            x = pop as f64 / (self.think_time_s + r_total);
            for i in 0..k {
                q[i] = x * r[i];
            }
        }
        let response_s = if n == 0 {
            0.0
        } else {
            n as f64 / x - self.think_time_s
        };
        let utilizations = self
            .stations
            .iter()
            .map(|s| (x * s.demand_s).min(1.0))
            .collect();
        MvaResult {
            response_s: response_s.max(0.0),
            throughput: x,
            queue_lengths: q,
            utilizations,
        }
    }
}

/// Fleet-level load metrics: a population of users spread across many
/// identical VMs by a least-loaded balancer, each VM an independent copy
/// of one [`ClosedNetwork`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetLoad {
    /// User-weighted mean response time across the fleet, seconds.
    pub mean_response_s: f64,
    /// Approximate 99th-percentile response time, seconds: the
    /// most-loaded VM group's mean response scaled by `ln(100)` — exact
    /// when sojourn times are exponential, a documented approximation
    /// otherwise.
    pub p99_response_s: f64,
    /// User-weighted bottleneck-station utilisation across the fleet.
    pub utilization: f64,
    /// Aggregate throughput, requests/second.
    pub throughput: f64,
    /// User-weighted fraction of requests whose response time exceeds
    /// the SLO (exponential-sojourn approximation `exp(-slo / R)`).
    pub slo_violation_frac: f64,
}

/// Solve the fleet: `users` concurrent users least-loaded-balanced over
/// `servers` identical VMs, each modelled by `per_vm`.
///
/// A least-loaded balancer over identical VMs splits the population as
/// evenly as integers allow: `users mod servers` VMs carry
/// `ceil(users/servers)` users, the rest `floor(users/servers)`. Only
/// those **two** populations ever need an MVA solve, so fleet-level
/// aggregation is O(users/servers) regardless of fleet size — this is
/// what lets a 2000-VM fleet re-solve its latency model at every
/// autoscaler control tick.
///
/// Panics if `servers == 0` (the caller decides what a total outage
/// means; this function only models a serving fleet).
pub fn fleet_response(per_vm: &ClosedNetwork, users: u64, servers: u64, slo_s: f64) -> FleetLoad {
    assert!(servers > 0, "fleet_response needs at least one serving VM");
    assert!(slo_s > 0.0 && slo_s.is_finite());
    if users == 0 {
        // No demand: an idle fleet serves a hypothetical request at the
        // raw (contention-free) demand.
        let r = per_vm.solve(1);
        return FleetLoad {
            mean_response_s: r.response_s,
            p99_response_s: r.response_s * 100f64.ln(),
            utilization: 0.0,
            throughput: 0.0,
            slo_violation_frac: violation(r.response_s, slo_s),
        };
    }
    let lo_pop = users / servers;
    let hi_pop = lo_pop + 1;
    let hi_vms = users % servers;
    let lo_vms = servers - hi_vms;
    let hi = if hi_vms > 0 {
        Some(per_vm.solve(hi_pop.min(u32::MAX as u64) as u32))
    } else {
        None
    };
    let lo = if lo_vms > 0 && lo_pop > 0 {
        Some(per_vm.solve(lo_pop.min(u32::MAX as u64) as u32))
    } else {
        None
    };
    let mut weighted_r = 0.0;
    let mut weighted_u = 0.0;
    let mut weighted_v = 0.0;
    let mut throughput = 0.0;
    let mut worst_r = 0.0f64;
    let mut add = |sol: &MvaResult, vms: u64, pop: u64| {
        let w = (vms * pop) as f64 / users as f64;
        let u_bottleneck = sol.utilizations.iter().copied().fold(0.0, f64::max);
        weighted_r += w * sol.response_s;
        weighted_u += w * u_bottleneck;
        weighted_v += w * violation(sol.response_s, slo_s);
        throughput += vms as f64 * sol.throughput;
        worst_r = worst_r.max(sol.response_s);
    };
    if let Some(sol) = &hi {
        add(sol, hi_vms, hi_pop);
    }
    if let Some(sol) = &lo {
        add(sol, lo_vms, lo_pop);
    }
    FleetLoad {
        mean_response_s: weighted_r,
        p99_response_s: worst_r * 100f64.ln(),
        utilization: weighted_u,
        throughput,
        slo_violation_frac: weighted_v,
    }
}

/// P(response > slo) under the exponential-sojourn approximation.
fn violation(mean_response_s: f64, slo_s: f64) -> f64 {
    if mean_response_s <= 0.0 {
        0.0
    } else {
        (-slo_s / mean_response_s).exp()
    }
}

/// The largest per-VM population whose bottleneck utilisation stays at
/// or below `target` — the autoscaler's "users one VM can absorb" knob.
/// Returns at least 1 (a VM always takes one user, however overloaded).
pub fn capacity_at_utilization(per_vm: &ClosedNetwork, target: f64) -> u64 {
    assert!((0.0..=1.0).contains(&target) && target > 0.0);
    let mut n = 1u64;
    loop {
        let sol = per_vm.solve((n + 1).min(u32::MAX as u64) as u32);
        let u = sol.utilizations.iter().copied().fold(0.0, f64::max);
        if u > target || n >= 1_000_000 {
            return n;
        }
        n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(demand: f64, think: f64) -> ClosedNetwork {
        ClosedNetwork::new(vec![Station::new("cpu", demand)], think)
    }

    #[test]
    fn one_job_sees_raw_demand() {
        let net = single(0.05, 2.0);
        let r = net.solve(1);
        assert!((r.response_s - 0.05).abs() < 1e-12);
        assert!((r.throughput - 1.0 / 2.05).abs() < 1e-12);
    }

    #[test]
    fn throughput_saturates_at_inverse_bottleneck() {
        let net = single(0.05, 2.0);
        let r = net.solve(1_000);
        assert!((r.throughput - 20.0).abs() < 0.01, "X {}", r.throughput);
        // Heavy load: R ~ N*D - Z.
        let expect = 1_000.0 * 0.05 - 2.0;
        assert!((r.response_s - expect).abs() / expect < 0.01);
        assert!((r.utilizations[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn response_monotone_in_population() {
        let net = ClosedNetwork::new(
            vec![Station::new("cpu", 0.016), Station::new("io", 0.005)],
            2.0,
        );
        let mut prev = 0.0;
        for n in [1, 50, 100, 200, 400] {
            let r = net.solve(n).response_s;
            assert!(r >= prev, "response must grow with load");
            prev = r;
        }
    }

    #[test]
    fn light_load_response_near_total_demand() {
        // With plenty of think time and few jobs, no queueing happens.
        let net = ClosedNetwork::new(
            vec![Station::new("cpu", 0.01), Station::new("io", 0.02)],
            100.0,
        );
        let r = net.solve(10);
        assert!((r.response_s - 0.03).abs() < 0.001);
    }

    #[test]
    fn bottleneck_station_dominates_queueing() {
        let net = ClosedNetwork::new(
            vec![Station::new("cpu", 0.05), Station::new("io", 0.01)],
            1.0,
        );
        let r = net.solve(200);
        assert!(r.queue_lengths[0] > 10.0 * r.queue_lengths[1]);
        assert!(r.utilizations[0] > r.utilizations[1]);
    }

    #[test]
    fn zero_population() {
        let net = single(0.05, 2.0);
        let r = net.solve(0);
        assert_eq!(r.response_s, 0.0);
        assert_eq!(r.throughput, 0.0);
    }

    #[test]
    fn utilization_scales_with_demand() {
        let slow = single(0.05, 2.0).solve(30);
        let fast = single(0.025, 2.0).solve(30);
        assert!(slow.utilizations[0] > fast.utilizations[0]);
        assert!(slow.response_s > fast.response_s);
    }

    #[test]
    fn fleet_even_split_equals_single_vm() {
        // 300 users on 3 VMs is exactly 100 users on 1 VM, three times.
        let net = single(0.016, 4.0);
        let one = net.solve(100);
        let fleet = fleet_response(&net, 300, 3, 1.0);
        assert!((fleet.mean_response_s - one.response_s).abs() < 1e-12);
        assert!((fleet.throughput - 3.0 * one.throughput).abs() < 1e-9);
    }

    #[test]
    fn fleet_uneven_split_solves_two_populations() {
        let net = single(0.016, 4.0);
        // 301 users on 3 VMs: one VM at 101, two at 100.
        let fleet = fleet_response(&net, 301, 3, 1.0);
        let lo = net.solve(100).response_s;
        let hi = net.solve(101).response_s;
        assert!(fleet.mean_response_s > lo && fleet.mean_response_s < hi + 1e-12);
        assert!((fleet.p99_response_s - hi * 100f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn more_servers_cut_response_and_utilization() {
        let net = single(0.05, 2.0);
        let tight = fleet_response(&net, 1_000, 10, 0.5);
        let roomy = fleet_response(&net, 1_000, 40, 0.5);
        assert!(roomy.mean_response_s < tight.mean_response_s);
        assert!(roomy.utilization < tight.utilization);
        assert!(roomy.slo_violation_frac <= tight.slo_violation_frac);
    }

    #[test]
    fn idle_and_tiny_fleets() {
        let net = single(0.05, 2.0);
        let idle = fleet_response(&net, 0, 5, 0.5);
        assert!((idle.mean_response_s - 0.05).abs() < 1e-12);
        assert_eq!(idle.throughput, 0.0);
        // Fewer users than servers: every user alone on a VM.
        let sparse = fleet_response(&net, 3, 5, 0.5);
        assert!((sparse.mean_response_s - 0.05).abs() < 1e-12);
    }

    #[test]
    fn capacity_tracks_the_utilization_target() {
        let net = single(0.016, 4.0);
        let cap = capacity_at_utilization(&net, 0.6);
        let at = net.solve(cap as u32).utilizations[0];
        let above = net.solve(cap as u32 + 1).utilizations[0];
        assert!(at <= 0.6, "util at cap {at}");
        assert!(above > 0.6, "util just above cap {above}");
        assert!(capacity_at_utilization(&net, 0.9) > cap);
    }
}
