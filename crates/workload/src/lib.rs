//! # spothost-workload
//!
//! Workload-side models for the paper's §6 system-performance study:
//!
//! * [`mva`] — an exact Mean-Value-Analysis solver for closed queueing
//!   networks (the textbook model of a fixed population of emulated
//!   browsers cycling through think time and server stations).
//! * [`tpcw`] — the TPC-W ordering-mix e-commerce benchmark expressed as a
//!   two-station (CPU + I/O) closed network, with the nested-VM penalties
//!   measured in §6 (≈2% disk, load-dependent CPU up to 50%).
//! * [`response`] — Figure 12's response-time-vs-EBs curves for native and
//!   nested platforms under both configurations (images served locally vs
//!   offloaded to a CDN).
//! * [`iobench`] — the Table 4 iperf/dd microbenchmark model.
//! * [`slo`] — availability arithmetic ("four nines", downtime budgets).
//! * [`traffic`] — the fleet simulator's demand curve: a deterministic
//!   diurnal baseline plus a seeded flash-crowd process, feeding the
//!   fleet-level MVA aggregation ([`mva::fleet_response`]) that closes
//!   the autoscaler's load → latency → SLO loop.

// Library code must not unwrap (see DESIGN.md "Failure semantics").
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod iobench;
pub mod mva;
pub mod response;
pub mod slo;
pub mod tpcw;
pub mod traffic;

pub use iobench::{simulate_iobench, IoBenchRow};
pub use mva::{
    capacity_at_utilization, fleet_response, ClosedNetwork, FleetLoad, MvaResult, Station,
};
pub use response::{response_curve, ResponsePoint};
pub use slo::{downtime_per_month, max_unavailability_for_nines, meets_nines};
pub use tpcw::{tpcw_network, NestedPenalties, Platform, TpcwConfig};
pub use traffic::{TrafficConfig, TrafficModel};
