//! Table 4: network and disk I/O of nested vs native VMs.
//!
//! The paper measures iperf throughput and dd disk bandwidth on an
//! m3.medium, native vs Xen-Blanket nested. We reproduce the measurement
//! *procedure* as a model: nominal platform rates, the nested penalty
//! (~0% network, ~2% disk), and per-run measurement noise.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use spothost_market::dist;

/// One Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct IoBenchRow {
    /// Benchmark name ("Network TX", "Disk write", ...).
    pub metric: &'static str,
    /// Measured native-platform rate, Mbps.
    pub native_mbps: f64,
    /// Measured nested-platform rate, Mbps.
    pub nested_mbps: f64,
}

impl IoBenchRow {
    /// Fractional degradation of the nested platform.
    pub fn degradation(&self) -> f64 {
        1.0 - self.nested_mbps / self.native_mbps
    }
}

/// Nominal native rates measured in the paper (Mbps).
const NOMINAL: [(&str, f64, f64); 4] = [
    // (metric, native rate, nested penalty)
    ("Network TX", 304.0, 0.000),
    ("Network RX", 316.0, 0.006),
    ("Disk Read", 304.6, 0.023),
    ("Disk Write", 280.4, 0.022),
];

/// Per-run measurement noise (coefficient of variation). iperf/dd runs on
/// shared-tenancy EC2 bounce by a fraction of a percent.
const NOISE_CV: f64 = 0.003;

/// Run the simulated microbenchmark suite once.
pub fn simulate_iobench(seed: u64) -> Vec<IoBenchRow> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    NOMINAL
        .iter()
        .map(|&(metric, native, penalty)| {
            let native_mbps = dist::normal(&mut rng, native, native * NOISE_CV);
            let nested_nominal = native * (1.0 - penalty);
            let nested_mbps = dist::normal(&mut rng, nested_nominal, nested_nominal * NOISE_CV);
            IoBenchRow {
                metric,
                native_mbps,
                nested_mbps,
            }
        })
        .collect()
}

/// Average the benchmark over several runs (the paper reports means).
pub fn iobench_mean(seed0: u64, runs: u64) -> Vec<IoBenchRow> {
    assert!(runs > 0);
    let all: Vec<Vec<IoBenchRow>> = (seed0..seed0 + runs).map(simulate_iobench).collect();
    (0..NOMINAL.len())
        .map(|i| {
            let native = all.iter().map(|r| r[i].native_mbps).sum::<f64>() / runs as f64;
            let nested = all.iter().map(|r| r[i].nested_mbps).sum::<f64>() / runs as f64;
            IoBenchRow {
                metric: NOMINAL[i].0,
                native_mbps: native,
                nested_mbps: nested,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_in_table_order() {
        let rows = simulate_iobench(1);
        let names: Vec<&str> = rows.iter().map(|r| r.metric).collect();
        assert_eq!(
            names,
            ["Network TX", "Network RX", "Disk Read", "Disk Write"]
        );
    }

    #[test]
    fn network_close_disk_two_percent() {
        let rows = iobench_mean(0, 50);
        // Network: within 1%.
        assert!(
            rows[0].degradation().abs() < 0.01,
            "TX {}",
            rows[0].degradation()
        );
        assert!(
            rows[1].degradation().abs() < 0.015,
            "RX {}",
            rows[1].degradation()
        );
        // Disk: ~2%, definitely under 4% ("degraded by 2%", §6.1).
        for row in &rows[2..] {
            let d = row.degradation();
            assert!((0.01..0.04).contains(&d), "{}: {d}", row.metric);
        }
    }

    #[test]
    fn means_match_paper_within_percent() {
        let rows = iobench_mean(0, 100);
        let expect = [
            (304.0, 304.0),
            (316.0, 314.0),
            (304.6, 297.6),
            (280.4, 274.2),
        ];
        for (row, (native, nested)) in rows.iter().zip(expect) {
            assert!(
                (row.native_mbps - native).abs() / native < 0.01,
                "{}",
                row.metric
            );
            assert!(
                (row.nested_mbps - nested).abs() / nested < 0.01,
                "{}",
                row.metric
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(simulate_iobench(9), simulate_iobench(9));
        assert_ne!(simulate_iobench(9), simulate_iobench(10));
    }
}
