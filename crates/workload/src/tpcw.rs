//! TPC-W as a closed queueing network (§6.2).
//!
//! The paper runs the TPC-W "ordering" mix (50% browsing / 50% ordering)
//! against a Java-servlet store, in two configurations:
//!
//! * **With images** — the server also ships the product images, so the
//!   request path is I/O-bound. Xen-Blanket forwards I/O efficiently, so
//!   nested performance matches native (Figure 12(a)).
//! * **Without images** — images come from a CDN and the server path is
//!   CPU-bound; nested virtualization's extra hypervisor exits inflate CPU
//!   service demand by up to 50% under load (Figure 12(b)).
//!
//! The nested CPU penalty is *load-dependent* (§6.2: "the CPU overhead
//! depends on the load"): guest exits contend harder as utilisation rises.
//! We model the demand multiplier as `1 + cpu_max * u^3` and solve the
//! resulting fixed point (demand depends on utilisation depends on
//! demand) by iteration — it converges in a handful of rounds because the
//! map is monotone and bounded.

use crate::mva::{ClosedNetwork, Station};

/// Which TPC-W serving configuration (Figure 12(a) vs 12(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpcwConfig {
    /// Browsers fetch images from the server: I/O-bound.
    WithImages,
    /// Images offloaded to a CDN: CPU-bound.
    NoImages,
}

/// Native EC2 VM or Xen-Blanket nested VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// A VM directly on EC2.
    Native,
    /// A nested VM inside a Xen-Blanket EC2 host.
    Nested,
}

/// Nested-virtualization penalties (defaults from §6 measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NestedPenalties {
    /// Fractional I/O throughput loss (Table 4: ~2%).
    pub io: f64,
    /// Maximum fractional CPU demand inflation at saturation (§6.2: 50%).
    pub cpu_max: f64,
    /// Exponent of the load dependence (`1 + cpu_max * u^exp`). A high
    /// exponent keeps the curves overlapping at light load, as Figure
    /// 12(b) shows.
    pub cpu_exponent: f64,
}

impl NestedPenalties {
    /// The §6 Xen-Blanket measurements: ~2% I/O, up to 50% CPU at
    /// saturation with a cubic load dependence.
    pub fn xen_blanket() -> Self {
        NestedPenalties {
            io: 0.02,
            cpu_max: 0.50,
            cpu_exponent: 3.0,
        }
    }
}

/// Base (native) service demands of the TPC-W ordering mix, seconds per
/// request, calibrated so the response curves land in Figure 12's range
/// (hundreds of ms at 100 EBs, several seconds at 400 EBs).
fn base_demands(cfg: TpcwConfig) -> (f64, f64) {
    match cfg {
        // (cpu, io): serving images shifts the bottleneck to I/O.
        TpcwConfig::WithImages => (0.016, 0.055),
        TpcwConfig::NoImages => (0.016, 0.005),
    }
}

/// TPC-W emulated-browser think time, seconds. The TPC-W spec's think
/// times average ~7s; we use a shorter effective value calibrated so that
/// the CPU-bound configuration's saturation knee falls inside Figure 12's
/// 100-400 EB range on an m3.medium-class server.
pub const THINK_TIME_S: f64 = 4.0;

/// Build the TPC-W closed network for a platform at population `ebs`,
/// resolving the load-dependent nested CPU demand by fixed-point
/// iteration. Returns the converged network.
pub fn tpcw_network(
    cfg: TpcwConfig,
    platform: Platform,
    penalties: &NestedPenalties,
    ebs: u32,
) -> ClosedNetwork {
    let (cpu_base, io_base) = base_demands(cfg);
    match platform {
        Platform::Native => ClosedNetwork::new(
            vec![Station::new("cpu", cpu_base), Station::new("io", io_base)],
            THINK_TIME_S,
        ),
        Platform::Nested => {
            let io = io_base / (1.0 - penalties.io);
            // Fixed point on the CPU utilisation: start optimistic, apply
            // the load-dependent inflation, re-solve.
            let mut factor = 1.0;
            let mut net = ClosedNetwork::new(
                vec![
                    Station::new("cpu", cpu_base * factor),
                    Station::new("io", io),
                ],
                THINK_TIME_S,
            );
            for _ in 0..20 {
                let sol = net.solve(ebs);
                let u_cpu = sol.utilizations[0];
                let next = 1.0 + penalties.cpu_max * u_cpu.powf(penalties.cpu_exponent);
                if (next - factor).abs() < 1e-6 {
                    break;
                }
                factor = next;
                net = ClosedNetwork::new(
                    vec![
                        Station::new("cpu", cpu_base * factor),
                        Station::new("io", io),
                    ],
                    THINK_TIME_S,
                );
            }
            net
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pen() -> NestedPenalties {
        NestedPenalties::xen_blanket()
    }

    #[test]
    fn with_images_is_io_bound_on_both_platforms() {
        for platform in [Platform::Native, Platform::Nested] {
            let net = tpcw_network(TpcwConfig::WithImages, platform, &pen(), 400);
            let (cpu, io) = (net.stations[0].demand_s, net.stations[1].demand_s);
            assert!(io > cpu, "{platform:?}: io {io} must exceed cpu {cpu}");
        }
    }

    #[test]
    fn no_images_is_cpu_bound() {
        let net = tpcw_network(TpcwConfig::NoImages, Platform::Native, &pen(), 400);
        assert!(net.stations[0].demand_s > net.stations[1].demand_s);
    }

    #[test]
    fn nested_cpu_inflation_saturates_near_fifty_percent() {
        let native = tpcw_network(TpcwConfig::NoImages, Platform::Native, &pen(), 400);
        let nested = tpcw_network(TpcwConfig::NoImages, Platform::Nested, &pen(), 400);
        let ratio = nested.stations[0].demand_s / native.stations[0].demand_s;
        assert!(
            (1.35..=1.5).contains(&ratio),
            "saturated CPU inflation {ratio}"
        );
    }

    #[test]
    fn nested_cpu_inflation_negligible_at_light_load() {
        let native = tpcw_network(TpcwConfig::NoImages, Platform::Native, &pen(), 20);
        let nested = tpcw_network(TpcwConfig::NoImages, Platform::Nested, &pen(), 20);
        let ratio = nested.stations[0].demand_s / native.stations[0].demand_s;
        assert!(ratio < 1.1, "light-load CPU inflation {ratio}");
    }

    #[test]
    fn fixed_point_is_deterministic() {
        let a = tpcw_network(TpcwConfig::NoImages, Platform::Nested, &pen(), 300);
        let b = tpcw_network(TpcwConfig::NoImages, Platform::Nested, &pen(), 300);
        assert_eq!(a, b);
    }

    #[test]
    fn io_penalty_applied() {
        let native = tpcw_network(TpcwConfig::WithImages, Platform::Native, &pen(), 100);
        let nested = tpcw_network(TpcwConfig::WithImages, Platform::Nested, &pen(), 100);
        let ratio = nested.stations[1].demand_s / native.stations[1].demand_s;
        assert!((ratio - 1.0 / 0.98).abs() < 1e-9);
    }
}
