//! Availability SLO arithmetic.
//!
//! The paper's bar (§1): an always-on service needs at least four nines
//! (99.99%) of availability — unavailability of at most one basis point,
//! "roughly 4.3 minutes of downtime per month".

/// Seconds in the paper's nominal month (30 days).
pub const MONTH_SECS: f64 = 30.0 * 24.0 * 3600.0;

/// Maximum unavailability fraction for an availability of `nines` nines
/// (e.g. 4 -> 1e-4).
pub fn max_unavailability_for_nines(nines: u32) -> f64 {
    10f64.powi(-(nines as i32))
}

/// Does an unavailability fraction meet an N-nines SLO?
pub fn meets_nines(unavailability: f64, nines: u32) -> bool {
    unavailability <= max_unavailability_for_nines(nines)
}

/// Downtime per month implied by an unavailability fraction, in seconds.
pub fn downtime_per_month(unavailability: f64) -> f64 {
    assert!((0.0..=1.0).contains(&unavailability));
    unavailability * MONTH_SECS
}

/// The number of whole nines an unavailability fraction achieves.
pub fn nines_achieved(unavailability: f64) -> u32 {
    if unavailability <= 0.0 {
        return u32::MAX;
    }
    let mut n = 0;
    while unavailability <= max_unavailability_for_nines(n + 1) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_nines_is_4_3_minutes_per_month() {
        // The paper: one basis point ~ 4.3 minutes of downtime per month.
        let secs = downtime_per_month(max_unavailability_for_nines(4));
        assert!((secs / 60.0 - 4.32).abs() < 0.01, "{} minutes", secs / 60.0);
    }

    #[test]
    fn meets_nines_boundaries() {
        assert!(meets_nines(1e-4, 4));
        assert!(!meets_nines(1.1e-4, 4));
        assert!(meets_nines(0.0, 9));
    }

    #[test]
    fn nines_achieved_counts() {
        assert_eq!(nines_achieved(0.5), 0);
        assert_eq!(nines_achieved(0.05), 1);
        assert_eq!(nines_achieved(1e-4), 4);
        assert_eq!(nines_achieved(9e-5), 4);
        assert_eq!(nines_achieved(1e-5), 5);
        assert_eq!(nines_achieved(0.0), u32::MAX);
    }

    #[test]
    fn pure_spot_fails_the_bar() {
        // Figure 11(b): >1% unavailability is two nines at best.
        assert!(!meets_nines(0.015, 4));
        assert_eq!(nines_achieved(0.015), 1);
    }
}
