//! Service traffic model for fleet-scale simulation: a deterministic
//! diurnal baseline plus a seeded flash-crowd process.
//!
//! The paper's premise is an *always-on service*; what varies over a
//! hosting month is not whether the service is up but how many users are
//! hitting it. This module supplies that demand curve:
//!
//! * a **diurnal** sinusoid (daily peak/trough around a base population,
//!   with a weekend multiplier), which is a pure function of simulated
//!   time — no randomness at all;
//! * **flash crowds**: rare surges (a press mention, a sale) arriving as
//!   a Poisson process, each ramping up linearly, holding at a jittered
//!   magnitude, then decaying linearly back to baseline.
//!
//! The flash schedule is precomputed at construction from a dedicated
//! ChaCha stream (`derive_seed(seed, "traffic-flash", 0)`), so
//! [`TrafficModel::users_at`] is a pure function: same `(config, seed,
//! horizon)` → identical demand at every instant, which the fleet
//! simulator's byte-identical-report contract requires. A zero
//! `flash_per_day` advances no RNG stream at all, so the flash-free
//! configuration is bit-identical to a purely diurnal model — the same
//! zero-rate neutrality every stochastic layer in this codebase keeps.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use spothost_market::gen::derive_seed;
use spothost_market::time::{SimDuration, SimTime};

/// Knobs of the traffic model. All time-varying terms multiply
/// [`TrafficConfig::base_users`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Mean concurrent user population (emulated browsers).
    pub base_users: f64,
    /// Diurnal swing as a fraction of the base in `[0, 1)`: demand moves
    /// between `base * (1 - a)` and `base * (1 + a)` over each day.
    pub diurnal_amplitude: f64,
    /// Hour-of-day (0–24) at which the diurnal peak falls.
    pub peak_hour: f64,
    /// Demand multiplier on days 5 and 6 of each simulated week (the
    /// simulation starts on day 0, a Monday by convention).
    pub weekend_factor: f64,
    /// Expected flash crowds per day (Poisson arrivals; 0 disables the
    /// flash process entirely and advances no RNG stream).
    pub flash_per_day: f64,
    /// Mean flash magnitude: the *additional* demand at a flash's hold
    /// plateau, as a multiple of the base population. Per-flash magnitude
    /// jitters uniformly in `[0.5, 1.5]` of this mean.
    pub flash_magnitude: f64,
    /// Linear ramp-up from baseline to the flash plateau.
    pub flash_ramp: SimDuration,
    /// Time spent at the plateau.
    pub flash_hold: SimDuration,
    /// Linear decay back to baseline.
    pub flash_decay: SimDuration,
}

impl TrafficConfig {
    /// A web service with a pronounced daily cycle, quieter weekends, and
    /// roughly one flash crowd a week tripling demand for about an hour.
    pub fn diurnal_default() -> Self {
        TrafficConfig {
            base_users: 10_000.0,
            diurnal_amplitude: 0.6,
            peak_hour: 20.0,
            weekend_factor: 0.7,
            flash_per_day: 1.0 / 7.0,
            flash_magnitude: 3.0,
            flash_ramp: SimDuration::minutes(10),
            flash_hold: SimDuration::minutes(45),
            flash_decay: SimDuration::minutes(30),
        }
    }

    /// Validate ranges; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.base_users.is_finite() && self.base_users > 0.0) {
            return Err(format!("base_users must be positive: {}", self.base_users));
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(format!(
                "diurnal_amplitude must be in [0, 1): {}",
                self.diurnal_amplitude
            ));
        }
        if !(0.0..=24.0).contains(&self.peak_hour) {
            return Err(format!("peak_hour must be in [0, 24]: {}", self.peak_hour));
        }
        if !(self.weekend_factor.is_finite() && self.weekend_factor > 0.0) {
            return Err(format!(
                "weekend_factor must be positive: {}",
                self.weekend_factor
            ));
        }
        if !(self.flash_per_day.is_finite() && self.flash_per_day >= 0.0) {
            return Err(format!(
                "flash_per_day must be >= 0: {}",
                self.flash_per_day
            ));
        }
        if !(self.flash_magnitude.is_finite() && self.flash_magnitude >= 0.0) {
            return Err(format!(
                "flash_magnitude must be >= 0: {}",
                self.flash_magnitude
            ));
        }
        Ok(())
    }
}

/// One precomputed flash crowd.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Flash {
    start: SimTime,
    /// Additional users at the plateau.
    extra_users: f64,
}

/// A fully materialised demand curve over a horizon: diurnal baseline
/// plus the seeded flash schedule. Construction draws all randomness;
/// queries are pure.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    cfg: TrafficConfig,
    flashes: Vec<Flash>,
}

impl TrafficModel {
    /// Build the model, precomputing the flash schedule for `horizon`
    /// from a dedicated seed stream. Panics on an invalid config.
    pub fn new(cfg: TrafficConfig, seed: u64, horizon: SimDuration) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid traffic config: {e}");
        }
        let mut flashes = Vec::new();
        if cfg.flash_per_day > 0.0 && cfg.flash_magnitude > 0.0 {
            let mut rng = ChaCha12Rng::seed_from_u64(derive_seed(seed, "traffic-flash", 0));
            let mean_gap_ms = SimDuration::days(1).0 as f64 / cfg.flash_per_day;
            let mut t = 0.0f64;
            let end = horizon.0 as f64;
            loop {
                // Exponential inter-arrival gap.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -mean_gap_ms * u.ln();
                if t >= end {
                    break;
                }
                let jitter: f64 = rng.gen_range(0.5..1.5);
                flashes.push(Flash {
                    start: SimTime(t as u64),
                    extra_users: cfg.base_users * cfg.flash_magnitude * jitter,
                });
            }
        }
        TrafficModel { cfg, flashes }
    }

    /// Concurrent user population at `t`. Pure and deterministic.
    pub fn users_at(&self, t: SimTime) -> f64 {
        let hours = t.0 as f64 / 3_600_000.0;
        let day = (hours / 24.0).floor() as u64;
        let hour_of_day = hours - day as f64 * 24.0;
        let phase = (hour_of_day - self.cfg.peak_hour) / 24.0 * std::f64::consts::TAU;
        let diurnal = 1.0 + self.cfg.diurnal_amplitude * phase.cos();
        let weekend = if day % 7 >= 5 {
            self.cfg.weekend_factor
        } else {
            1.0
        };
        let mut users = self.cfg.base_users * diurnal * weekend;
        for f in &self.flashes {
            users += f.extra_users * flash_shape(&self.cfg, f.start, t);
        }
        users.max(0.0)
    }

    /// Upper bound on [`TrafficModel::users_at`] over the whole horizon
    /// (diurnal peak plus every flash at its plateau) — a capacity
    /// planner's worst case, not a tight max.
    pub fn peak_users(&self) -> f64 {
        let diurnal_peak = self.cfg.base_users * (1.0 + self.cfg.diurnal_amplitude);
        let flash_peak = self
            .flashes
            .iter()
            .map(|f| f.extra_users)
            .fold(0.0, f64::max);
        diurnal_peak + flash_peak
    }

    /// Number of flash crowds scheduled over the horizon.
    pub fn flash_count(&self) -> usize {
        self.flashes.len()
    }

    /// The model's configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }
}

/// The ramp/hold/decay envelope of a flash that started at `start`,
/// evaluated at `t`; in `[0, 1]`.
fn flash_shape(cfg: &TrafficConfig, start: SimTime, t: SimTime) -> f64 {
    if t < start {
        return 0.0;
    }
    let dt = (t.0 - start.0) as f64;
    let ramp = cfg.flash_ramp.0 as f64;
    let hold = cfg.flash_hold.0 as f64;
    let decay = cfg.flash_decay.0 as f64;
    if dt < ramp {
        if ramp == 0.0 {
            1.0
        } else {
            dt / ramp
        }
    } else if dt < ramp + hold {
        1.0
    } else if dt < ramp + hold + decay {
        1.0 - (dt - ramp - hold) / decay
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrafficConfig {
        TrafficConfig::diurnal_default()
    }

    #[test]
    fn deterministic_in_the_seed() {
        let a = TrafficModel::new(cfg(), 9, SimDuration::days(30));
        let b = TrafficModel::new(cfg(), 9, SimDuration::days(30));
        assert_eq!(a, b);
        let t = SimTime::ZERO + SimDuration::hours(100);
        assert_eq!(a.users_at(t).to_bits(), b.users_at(t).to_bits());
        let c = TrafficModel::new(cfg(), 10, SimDuration::days(30));
        assert_ne!(a, c, "different seeds must reschedule flashes");
    }

    #[test]
    fn zero_flash_rate_is_purely_diurnal() {
        let mut quiet = cfg();
        quiet.flash_per_day = 0.0;
        let m = TrafficModel::new(quiet.clone(), 1, SimDuration::days(30));
        assert_eq!(m.flash_count(), 0);
        // Peak hour beats trough hour on every weekday.
        let peak = SimTime::ZERO + SimDuration::hours(20);
        let trough = SimTime::ZERO + SimDuration::hours(8);
        assert!(m.users_at(peak) > m.users_at(trough));
        // Exact diurnal value at the peak.
        let expect = quiet.base_users * (1.0 + quiet.diurnal_amplitude);
        assert!((m.users_at(peak) - expect).abs() < 1e-9);
    }

    #[test]
    fn weekend_damps_demand() {
        let mut quiet = cfg();
        quiet.flash_per_day = 0.0;
        let m = TrafficModel::new(quiet, 1, SimDuration::days(30));
        let monday_noon = SimTime::ZERO + SimDuration::hours(12);
        let saturday_noon = SimTime::ZERO + SimDuration::hours(5 * 24 + 12);
        assert!(m.users_at(saturday_noon) < m.users_at(monday_noon));
        let ratio = m.users_at(saturday_noon) / m.users_at(monday_noon);
        assert!((ratio - 0.7).abs() < 1e-9);
    }

    #[test]
    fn flashes_arrive_at_roughly_the_configured_rate() {
        let mut busy = cfg();
        busy.flash_per_day = 2.0;
        let m = TrafficModel::new(busy, 3, SimDuration::days(60));
        let n = m.flash_count() as f64;
        assert!((60.0..=180.0).contains(&n), "{n} flashes over 60 days");
    }

    #[test]
    fn flash_lifts_demand_then_subsides() {
        let mut one = cfg();
        one.flash_per_day = 0.2;
        let m = TrafficModel::new(one.clone(), 5, SimDuration::days(30));
        assert!(m.flash_count() > 0, "need at least one flash");
        let f = m.flashes[0];
        let before = m.users_at(SimTime(f.start.0.saturating_sub(1)));
        let plateau = f.start + one.flash_ramp + SimDuration::minutes(1);
        let after =
            f.start + one.flash_ramp + one.flash_hold + one.flash_decay + SimDuration::hours(2);
        assert!(m.users_at(plateau) > before + 0.9 * f.extra_users);
        // Far after the flash (and any overlap), demand is diurnal again:
        // within the diurnal envelope.
        let envelope = one.base_users * (1.0 + one.diurnal_amplitude) * 1.0;
        if m.flashes
            .iter()
            .all(|g| flash_shape(&one, g.start, after) == 0.0)
        {
            assert!(m.users_at(after) <= envelope + 1e-9);
        }
    }

    #[test]
    fn peak_users_bounds_every_sample() {
        let m = TrafficModel::new(cfg(), 11, SimDuration::days(30));
        let peak = m.peak_users();
        for h in 0..(30 * 24) {
            let t = SimTime::ZERO + SimDuration::hours(h);
            // Overlapping flashes could in principle exceed the single-
            // flash bound; with the default weekly rate they never do.
            assert!(m.users_at(t) <= peak * 2.0, "hour {h}");
        }
    }

    #[test]
    fn five_million_users_stay_finite_and_deterministic() {
        // Web-scale sanity: a 5M-user base population over two months
        // must stay finite and non-negative at every sampled hour (no
        // overflow or NaN anywhere in the diurnal/flash arithmetic), and
        // two constructions must agree bit for bit.
        let mut big = cfg();
        big.base_users = 5_000_000.0;
        big.flash_per_day = 2.0;
        let horizon = SimDuration::days(60);
        let a = TrafficModel::new(big.clone(), 17, horizon);
        let b = TrafficModel::new(big.clone(), 17, horizon);
        assert_eq!(a, b);
        let peak = a.peak_users();
        assert!(peak.is_finite() && peak >= big.base_users);
        for h in 0..(60 * 24) {
            let t = SimTime::ZERO + SimDuration::hours(h);
            let users = a.users_at(t);
            assert!(users.is_finite() && users >= 0.0, "hour {h}: {users}");
            assert_eq!(
                users.to_bits(),
                b.users_at(t).to_bits(),
                "hour {h}: runs diverge"
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = cfg();
        c.diurnal_amplitude = 1.5;
        assert!(c.validate().is_err());
        c = cfg();
        c.base_users = 0.0;
        assert!(c.validate().is_err());
        assert!(cfg().validate().is_ok());
    }
}
