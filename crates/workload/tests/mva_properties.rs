//! Property-based tests of the MVA solver against the classical bounds of
//! closed queueing networks (asymptotic bound analysis).

use proptest::prelude::*;
use spothost_workload::mva::{ClosedNetwork, Station};

fn arb_network() -> impl Strategy<Value = ClosedNetwork> {
    (prop::collection::vec(0.001f64..0.2, 1..5), 0.0f64..20.0).prop_map(|(demands, think)| {
        let stations = demands
            .into_iter()
            .enumerate()
            .map(|(i, d)| Station::new(format!("s{i}"), d))
            .collect();
        ClosedNetwork::new(stations, think)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn throughput_respects_bounds(net in arb_network(), n in 1u32..500) {
        let sol = net.solve(n);
        let d_total: f64 = net.stations.iter().map(|s| s.demand_s).sum();
        // Asymptotic bound analysis: X(n) <= min(1/Dmax, n/(Z + D)).
        let upper = (1.0 / net.bottleneck_demand())
            .min(n as f64 / (net.think_time_s + d_total));
        prop_assert!(sol.throughput <= upper * (1.0 + 1e-9),
            "X {} exceeds ABA bound {}", sol.throughput, upper);
        prop_assert!(sol.throughput > 0.0);
    }

    #[test]
    fn response_bounded_below_by_total_demand(net in arb_network(), n in 1u32..500) {
        let sol = net.solve(n);
        let d_total: f64 = net.stations.iter().map(|s| s.demand_s).sum();
        prop_assert!(sol.response_s >= d_total - 1e-9,
            "R {} below demand {}", sol.response_s, d_total);
    }

    #[test]
    fn response_monotone_in_population(net in arb_network(), n in 2u32..400) {
        let lo = net.solve(n - 1).response_s;
        let hi = net.solve(n).response_s;
        prop_assert!(hi >= lo - 1e-9, "R({}) = {} < R({}) = {}", n, hi, n - 1, lo);
    }

    #[test]
    fn littles_law_holds(net in arb_network(), n in 1u32..300) {
        // N = X * (R + Z): total population equals throughput times total
        // cycle time.
        let sol = net.solve(n);
        let cycle = sol.response_s + net.think_time_s;
        prop_assert!((sol.throughput * cycle - n as f64).abs() < 1e-6,
            "Little's law violated: X*(R+Z) = {}", sol.throughput * cycle);
    }

    #[test]
    fn queues_sum_to_jobs_in_service(net in arb_network(), n in 1u32..300) {
        // Jobs queued at stations plus jobs thinking = N.
        let sol = net.solve(n);
        let queued: f64 = sol.queue_lengths.iter().sum();
        let thinking = sol.throughput * net.think_time_s;
        prop_assert!((queued + thinking - n as f64).abs() < 1e-6);
    }

    #[test]
    fn utilizations_in_unit_interval(net in arb_network(), n in 1u32..500) {
        for (i, &u) in net.solve(n).utilizations.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&u), "station {i}: {u}");
        }
    }

    #[test]
    fn scaling_all_demands_scales_response(net in arb_network(), n in 1u32..200) {
        // Doubling every service demand (and zero think time) must exactly
        // double response times — MVA is homogeneous of degree one.
        let zero_think = ClosedNetwork::new(net.stations.clone(), 0.0);
        let doubled = ClosedNetwork::new(
            net.stations
                .iter()
                .map(|s| Station::new(s.name.clone(), s.demand_s * 2.0))
                .collect(),
            0.0,
        );
        let r1 = zero_think.solve(n).response_s;
        let r2 = doubled.solve(n).response_s;
        prop_assert!((r2 - 2.0 * r1).abs() < 1e-6 * r2.max(1.0));
    }
}
