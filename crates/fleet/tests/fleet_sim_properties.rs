//! Fleet-simulator determinism guarantees, proptest-guarded:
//!
//! (a) a fixed `(config, seed, horizon)` triple gives a byte-identical
//!     [`FleetSimReport`] on every run — field-for-field equality AND an
//!     identical rendered text block, across random autoscaler shapes,
//!     storm intensities, and scopes;
//! (b) the report is internally conserved: the fleet never exceeds its
//!     configured bounds, cost stays finite and non-negative, and the
//!     accounting integrals (offered / unserved user-seconds, violation
//!     fractions) stay inside their definitional ranges.

use proptest::prelude::*;
use spothost_faults::StormConfig;
use spothost_fleet::{run_fleet_sim, FleetSimConfig};
use spothost_market::time::SimDuration;
use spothost_market::types::Zone;
use spothost_workload::TrafficConfig;

fn arb_config() -> impl Strategy<Value = FleetSimConfig> {
    (
        1u32..=4,                                              // min_vms
        4u32..=12,                                             // extra headroom above min
        prop_oneof![Just(5u64), Just(15u64), Just(30u64)],     // control interval minutes
        0.3f64..0.9,                                           // target utilization
        100.0f64..1500.0,                                      // base users
        prop_oneof![Just(0.0f64), Just(0.3), Just(0.8)],       // storm intensity
        prop::bool::ANY,                                       // cross-region?
        prop_oneof![Just(0.0f64), Just(1.0 / 7.0), Just(0.5)], // flashes/day
    )
        .prop_map(
            |(min_vms, headroom, tick_min, util, base, storm, multi, flash)| FleetSimConfig {
                zones: if multi {
                    vec![Zone::UsEast1a, Zone::UsWest1a]
                } else {
                    vec![Zone::UsEast1a]
                },
                storms: StormConfig::intensity(storm),
                traffic: TrafficConfig {
                    base_users: base,
                    flash_per_day: flash,
                    ..TrafficConfig::diurnal_default()
                },
                min_vms,
                max_vms: min_vms + headroom,
                control_interval: SimDuration::minutes(tick_min),
                target_utilization: util,
                ..FleetSimConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fixed_seed_is_byte_identical(cfg in arb_config(), seed in 0u64..1000) {
        let horizon = SimDuration::days(2);
        let a = run_fleet_sim(&cfg, seed, horizon);
        let b = run_fleet_sim(&cfg, seed, horizon);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.render(), b.render());
    }

    #[test]
    fn report_is_conserved(cfg in arb_config(), seed in 0u64..1000) {
        let report = run_fleet_sim(&cfg, seed, SimDuration::days(2));
        prop_assert!(report.total_cost.is_finite() && report.total_cost >= 0.0);
        prop_assert!(report.vm_hours >= 0.0);
        prop_assert!(report.peak_vms >= cfg.min_vms && report.peak_vms <= cfg.max_vms);
        for s in &report.samples {
            prop_assert!(s.live >= cfg.min_vms && s.live <= cfg.max_vms,
                "live {} outside [{}, {}]", s.live, cfg.min_vms, cfg.max_vms);
            prop_assert!(s.serving <= s.live);
            prop_assert!(s.utilization >= 0.0 && s.utilization <= 1.0 + 1e-9);
        }
        prop_assert!(report.unserved_user_seconds <= report.offered_user_seconds + 1e-6);
        prop_assert!((0.0..=1.0).contains(&report.slo_violation_frac));
        prop_assert!((0.0..=1.0).contains(&report.vm_unavailability));
        prop_assert!((0.0..=1.0).contains(&report.spot_fraction));
        prop_assert!((0.0..=1.0).contains(&report.service_availability()));
        // Spawn/release bookkeeping: what was spawned and not released
        // is exactly what survived to the horizon.
        prop_assert!(report.released_vms <= report.spawned_vms);
    }
}
