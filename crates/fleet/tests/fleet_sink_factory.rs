//! Fleet-scale telemetry plumbing: attaching a columnar sink factory to
//! [`FleetSim`] must not perturb the simulation (identical report to the
//! uninstrumented run), and the captured store must carry per-VM tagged
//! streams that demultiplex back into each VM's emission order.

use spothost_eventstore::{ColReader, ColumnarStore, EventKind, Predicate};
use spothost_fleet::sim::{run_fleet_sim, run_fleet_sim_with, FleetSimConfig};
use spothost_market::time::SimDuration;
use spothost_workload::traffic::TrafficConfig;

fn small_cfg() -> FleetSimConfig {
    FleetSimConfig {
        min_vms: 2,
        max_vms: 12,
        control_interval: SimDuration::minutes(15),
        traffic: TrafficConfig {
            base_users: 600.0,
            ..TrafficConfig::diurnal_default()
        },
        ..FleetSimConfig::default()
    }
}

#[test]
fn columnar_factory_does_not_change_the_report() {
    let cfg = small_cfg();
    let horizon = SimDuration::days(3);
    let plain = run_fleet_sim(&cfg, 21, horizon);

    let store = ColumnarStore::in_memory();
    let instrumented = run_fleet_sim_with(&cfg, 21, horizon, store.clone());
    store.finish().expect("flush");

    // The sink observes; it must never steer. Whole-report equality is
    // the same bar the determinism proptest holds two plain runs to.
    assert_eq!(plain, instrumented);
    assert!(store.events_written() > 0, "fleet run emitted nothing");
}

#[test]
fn fleet_store_demultiplexes_per_vm_streams() {
    let cfg = small_cfg();
    let horizon = SimDuration::days(3);
    let store = ColumnarStore::in_memory().with_block_events(256);
    let report = run_fleet_sim_with(&cfg, 33, horizon, store.clone());
    store.finish().expect("flush");

    let reader = ColReader::from_bytes(&store.bytes()).expect("parse");
    let vms = reader.vms();
    assert!(
        vms.len() >= cfg.min_vms as usize,
        "expected at least the floor fleet tagged: {vms:?}"
    );
    // Every stream in a fleet store is VM-tagged, and the tags are
    // exactly the spawn indices 0..spawned_vms.
    assert!(vms.iter().all(|v| v.is_some()));
    for vm in &vms {
        assert!(vm.expect("tagged") < report.spawned_vms);
    }

    // Each VM's demultiplexed stream is internally time-ordered and
    // starts with its scheduler booting (first state change).
    for vm in vms.iter().take(3) {
        let vm = vm.expect("tagged");
        let sel = reader
            .select(&Predicate::any().with_vm(vm))
            .expect("select");
        assert!(!sel.events.is_empty(), "vm{vm} stream empty");
        assert!(sel
            .events
            .windows(2)
            .all(|w| w[0].at.as_millis() <= w[1].at.as_millis()));
        assert!(sel
            .events
            .iter()
            .any(|se| EventKind::of(&se.event) == EventKind::StateChange));
    }

    // A kind query across the whole fleet: every closed lease was
    // emitted by some tagged VM.
    let closed = reader
        .select(&Predicate::any().with_kind(EventKind::LeaseClosed))
        .expect("select");
    assert!(!closed.events.is_empty());
    assert!(closed.events.iter().all(|se| se.vm.is_some()));
}
