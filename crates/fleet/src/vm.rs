//! Customer-facing VM descriptions.

use std::fmt;

/// A customer's nested VM and its capacity demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomerVm {
    /// Stable customer-assigned identifier.
    pub id: u64,
    /// Capacity demand in units (small = 1). Bounded by one xlarge server
    /// (8 units) — bigger tenants shard into several VMs, as they would on
    /// real EC2.
    pub units: u32,
}

impl CustomerVm {
    /// A VM demanding `units` capacity units; panics outside 1..=8.
    pub fn new(id: u64, units: u32) -> Self {
        assert!(
            (1..=8).contains(&units),
            "VM demand must be 1..=8 units, got {units}"
        );
        CustomerVm { id, units }
    }
}

impl fmt::Display for CustomerVm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}({}u)", self.id, self.units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range() {
        CustomerVm::new(0, 1);
        CustomerVm::new(1, 8);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn rejects_zero_units() {
        CustomerVm::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn rejects_oversized() {
        CustomerVm::new(0, 9);
    }
}
