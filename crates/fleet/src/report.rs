//! Fleet-level accounting.

use crate::packing::PlacementGroup;
use spothost_core::report::RunReport;

/// One placement group's scheduling outcome.
#[derive(Debug, Clone)]
pub struct GroupOutcome {
    /// The packed group of customer VMs.
    pub group: PlacementGroup,
    /// The group's scheduler run report.
    pub report: RunReport,
}

/// Aggregated fleet metrics.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-group outcomes the aggregates are computed over.
    pub outcomes: Vec<GroupOutcome>,
}

impl FleetReport {
    /// Wrap per-group outcomes for aggregate queries. Panics on an empty
    /// fleet.
    pub fn aggregate(outcomes: Vec<GroupOutcome>) -> Self {
        assert!(!outcomes.is_empty());
        FleetReport { outcomes }
    }

    /// Customer VMs hosted across all groups.
    pub fn total_vms(&self) -> usize {
        self.outcomes.iter().map(|o| o.group.vms.len()).sum()
    }

    /// Placement groups in the fleet.
    pub fn total_groups(&self) -> usize {
        self.outcomes.len()
    }

    /// Total dollars spent across groups.
    pub fn total_cost(&self) -> f64 {
        self.outcomes.iter().map(|o| o.report.cost).sum()
    }

    /// Total on-demand-only baseline dollars.
    pub fn baseline_cost(&self) -> f64 {
        self.outcomes.iter().map(|o| o.report.baseline_cost).sum()
    }

    /// Fleet normalized cost.
    pub fn normalized_cost(&self) -> f64 {
        let base = self.baseline_cost();
        if base == 0.0 {
            0.0
        } else {
            self.total_cost() / base
        }
    }

    /// Mean unavailability experienced by a customer VM (every VM in a
    /// group shares its group's downtime).
    pub fn vm_weighted_unavailability(&self) -> f64 {
        let total: usize = self.total_vms();
        if total == 0 {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.report.unavailability * o.group.vms.len() as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Worst single group's unavailability — the pool's SLA floor.
    pub fn worst_group_unavailability(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.report.unavailability)
            .fold(0.0, f64::max)
    }

    /// Fraction of bought capacity that is fragmentation padding.
    pub fn waste_fraction(&self) -> f64 {
        let allocated: u32 = self
            .outcomes
            .iter()
            .map(|o| o.group.allocated_units())
            .sum();
        let demanded: u32 = self.outcomes.iter().map(|o| o.group.demanded_units()).sum();
        if allocated == 0 {
            0.0
        } else {
            (allocated - demanded) as f64 / allocated as f64
        }
    }

    /// Total migrations across the fleet (forced, planned, reverse).
    pub fn total_migrations(&self) -> (u32, u32, u32) {
        self.outcomes.iter().fold((0, 0, 0), |acc, o| {
            (
                acc.0 + o.report.forced_migrations,
                acc.1 + o.report.planned_migrations,
                acc.2 + o.report.reverse_migrations,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::CustomerVm;
    use spothost_market::time::SimDuration;

    fn dummy_report(cost: f64, baseline: f64, unavail: f64) -> RunReport {
        RunReport {
            normalized_cost: cost / baseline,
            unavailability: unavail,
            degraded_fraction: 0.0,
            forced_per_hour: 0.0,
            planned_reverse_per_hour: 0.0,
            spot_fraction: 1.0,
            cost,
            baseline_cost: baseline,
            downtime: SimDuration::ZERO,
            active_span: SimDuration::days(30),
            forced_migrations: 1,
            planned_migrations: 2,
            reverse_migrations: 3,
            request_faults: 0,
            unwarned_revocations: 0,
            ckpt_faults: 0,
            live_aborts: 0,
        }
    }

    fn group(sizes: &[u32]) -> PlacementGroup {
        PlacementGroup {
            vms: sizes
                .iter()
                .enumerate()
                .map(|(i, &u)| CustomerVm::new(i as u64, u))
                .collect(),
        }
    }

    #[test]
    fn aggregation_math() {
        let r = FleetReport::aggregate(vec![
            GroupOutcome {
                group: group(&[4, 4]),
                report: dummy_report(10.0, 100.0, 0.001),
            },
            GroupOutcome {
                group: group(&[3]), // allocated 4, waste 1
                report: dummy_report(5.0, 50.0, 0.01),
            },
        ]);
        assert_eq!(r.total_vms(), 3);
        assert_eq!(r.total_groups(), 2);
        assert!((r.total_cost() - 15.0).abs() < 1e-12);
        assert!((r.normalized_cost() - 0.1).abs() < 1e-12);
        // VM-weighted: (0.001*2 + 0.01*1)/3.
        assert!((r.vm_weighted_unavailability() - 0.004).abs() < 1e-12);
        assert_eq!(r.worst_group_unavailability(), 0.01);
        // Waste: allocated 8+4=12, demanded 8+3=11.
        assert!((r.waste_fraction() - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(r.total_migrations(), (2, 4, 6));
    }
}
