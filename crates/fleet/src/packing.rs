//! First-fit-decreasing packing of customer VMs into placement groups.
//!
//! Groups are capped at 8 units (one xlarge server's worth); each group's
//! *allocated* capacity is its demand rounded up to the nearest supported
//! server size {1, 2, 4, 8}, because that's what can actually be bought.

use crate::vm::CustomerVm;

/// A set of VMs that live and migrate together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementGroup {
    /// Member VMs; they share a market, a bid, and a fate.
    pub vms: Vec<CustomerVm>,
}

/// The group capacity cap: one xlarge server.
pub const GROUP_CAP_UNITS: u32 = 8;

impl PlacementGroup {
    /// Total capacity the member VMs demand.
    pub fn demanded_units(&self) -> u32 {
        self.vms.iter().map(|v| v.units).sum()
    }

    /// Capacity that must be bought: demand rounded up to a supported
    /// server size.
    pub fn allocated_units(&self) -> u32 {
        let d = self.demanded_units();
        debug_assert!((1..=GROUP_CAP_UNITS).contains(&d));
        d.next_power_of_two()
    }

    /// Padding paid for but not used, in units.
    pub fn waste_units(&self) -> u32 {
        self.allocated_units() - self.demanded_units()
    }
}

/// Pack VMs into placement groups with first-fit-decreasing.
///
/// FFD on bins of 8 with items of size 1..=8 gives the classical
/// 11/9 OPT + 1 bound; for this item distribution the observed waste is
/// small and the packing is deterministic in the input order after the
/// stable size sort.
pub fn pack(vms: &[CustomerVm]) -> Vec<PlacementGroup> {
    let mut sorted: Vec<CustomerVm> = vms.to_vec();
    // Stable sort: equal sizes keep their input (id) order, making the
    // packing reproducible.
    sorted.sort_by_key(|vm| std::cmp::Reverse(vm.units));
    let mut groups: Vec<PlacementGroup> = Vec::new();
    for vm in sorted {
        match groups
            .iter_mut()
            .find(|g| g.demanded_units() + vm.units <= GROUP_CAP_UNITS)
        {
            Some(g) => g.vms.push(vm),
            None => groups.push(PlacementGroup { vms: vec![vm] }),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vms(sizes: &[u32]) -> Vec<CustomerVm> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &u)| CustomerVm::new(i as u64, u))
            .collect()
    }

    #[test]
    fn packs_exact_bins() {
        let groups = pack(&vms(&[4, 4, 2, 2, 2, 2]));
        assert_eq!(groups.len(), 2);
        for g in &groups {
            assert_eq!(g.demanded_units(), 8);
            assert_eq!(g.waste_units(), 0);
        }
    }

    #[test]
    fn every_vm_placed_exactly_once() {
        let input = vms(&[3, 5, 1, 8, 2, 2, 7, 1, 1]);
        let groups = pack(&input);
        let mut placed: Vec<u64> = groups
            .iter()
            .flat_map(|g| g.vms.iter().map(|v| v.id))
            .collect();
        placed.sort_unstable();
        let mut expected: Vec<u64> = (0..input.len() as u64).collect();
        expected.sort_unstable();
        assert_eq!(placed, expected);
    }

    #[test]
    fn groups_respect_the_cap_and_supported_sizes() {
        let groups = pack(&vms(&[5, 4, 3, 3, 2, 1, 1, 1, 6]));
        for g in &groups {
            assert!(g.demanded_units() <= GROUP_CAP_UNITS);
            assert!([1, 2, 4, 8].contains(&g.allocated_units()));
            assert!(g.allocated_units() >= g.demanded_units());
        }
    }

    #[test]
    fn ffd_beats_naive_first_fit_waste_here() {
        // 5,5,3,3: FFD packs [5,3][5,3] (no waste); input order [3,5,3,5]
        // under plain first-fit would pack [3,3][5][5] wasting 8 units.
        let groups = pack(&vms(&[3, 5, 3, 5]));
        assert_eq!(groups.len(), 2);
        let total_waste: u32 = groups.iter().map(|g| g.waste_units()).sum();
        assert_eq!(total_waste, 0);
    }

    #[test]
    fn deterministic() {
        let input = vms(&[3, 1, 4, 1, 5, 2, 6, 2]);
        assert_eq!(pack(&input), pack(&input));
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(pack(&[]).is_empty());
    }
}
