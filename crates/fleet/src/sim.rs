//! Fleet-scale service simulation: N per-VM schedulers in lockstep on a
//! shared event queue, fronted by a least-loaded balancer and a reactive
//! autoscaler (ROADMAP item 1).
//!
//! Where [`crate::pool`] hosts a *fixed* tenant population, this module
//! simulates one *service* whose capacity breathes with demand:
//!
//! * a [`TrafficModel`] (diurnal + flash crowds) produces the offered
//!   concurrent-user population at every instant;
//! * a fleet-level [`EventQueue`] of control ticks advances every live
//!   VM's [`SimRun`] in lockstep (`step_until(tick)`), so the whole
//!   fleet observes the same arena-backed market history on one shared
//!   simulated clock;
//! * at each tick, the least-loaded balancer's even user split lets
//!   [`spothost_workload::mva::fleet_response`] close the loop — offered
//!   load → per-VM utilisation → response time → SLO violations — with
//!   at most **two** MVA solves however large the fleet is;
//! * a target-tracking autoscaler compares demand against the per-VM
//!   capacity at the target utilisation and acquires or releases VMs
//!   through the ordinary bidding/fault/storm machinery: spawned VMs
//!   boot with real (spot!) startup latency, released VMs settle their
//!   leases at the release instant.
//!
//! # Determinism
//!
//! The fleet report is a pure function of `(config, seed, horizon)`:
//! per-VM provider streams derive from `derive_seed(fleet_seed,
//! "fleet-vm", spawn_index)`, the storm timeline is pinned to the fleet
//! seed (one storm hits everyone at once), the flash schedule derives
//! from its own named stream, and every tick iterates VMs in stable
//! spawn order. Same seed → byte-identical [`FleetSimReport`]
//! (proptest-guarded in `tests/fleet_sim_properties.rs`).

use spothost_cloudsim::EventQueue;
use spothost_core::config::SchedulerConfig;
use spothost_core::policy::BiddingPolicy;
use spothost_core::report::RunReport;
use spothost_core::scheduler::{SimRun, SimScratch};
use spothost_core::strategy::MarketScope;
use spothost_core::telemetry::{NullSinkFactory, Sink, SinkFactory};
use spothost_faults::StormConfig;
use spothost_market::catalog::Catalog;
use spothost_market::gen::{derive_seed, TraceSet};
use spothost_market::time::{SimDuration, SimTime};
use spothost_market::types::Zone;
use spothost_virt::MechanismCombo;
use spothost_workload::mva::{capacity_at_utilization, fleet_response};
use spothost_workload::tpcw::{tpcw_network, NestedPenalties, Platform, TpcwConfig};
use spothost_workload::traffic::{TrafficConfig, TrafficModel};
use spothost_workload::ClosedNetwork;

/// Configuration of a fleet-scale service simulation.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Zone(s) the fleet may place VMs in: one zone = multi-market, more
    /// = multi-region (heterogeneous spot mixes across regions).
    pub zones: Vec<Zone>,
    /// Bidding policy of every per-VM scheduler.
    pub policy: BiddingPolicy,
    /// Migration mechanism combo of every per-VM scheduler.
    pub mechanism: MechanismCombo,
    /// Correlated-failure storms, pinned to the fleet seed so the whole
    /// fleet sees one episode timeline.
    pub storms: StormConfig,
    /// The offered-load model driving the autoscaler.
    pub traffic: TrafficConfig,
    /// Fleet size floor (the autoscaler never goes below; ≥ 1).
    pub min_vms: u32,
    /// Fleet size ceiling (capacity is capped here however high demand
    /// surges).
    pub max_vms: u32,
    /// Autoscaler control interval: the fleet steps, re-solves the MVA
    /// model, and re-decides capacity every this often.
    pub control_interval: SimDuration,
    /// Bottleneck-utilisation target per VM; the autoscaler sizes the
    /// fleet so the balanced per-VM population stays at or below the
    /// capacity this utilisation implies.
    pub target_utilization: f64,
    /// Minimum quiet time between a scaling action and a later scale
    /// *down* (scale-ups are never delayed).
    pub scale_down_cooldown: SimDuration,
    /// Response-time SLO (seconds) that violation fractions are measured
    /// against.
    pub slo_response_s: f64,
    /// Capacity units of each VM (1 = small).
    pub vm_units: u32,
    /// The per-VM queueing model users are balanced into. The default is
    /// the CPU-bound nested TPC-W network (images on a CDN), with the
    /// load-dependent nested-CPU fixed point resolved at a mid-range
    /// population of 200 EBs.
    pub per_vm_network: ClosedNetwork,
}

impl Default for FleetSimConfig {
    fn default() -> Self {
        FleetSimConfig {
            zones: vec![Zone::UsEast1a],
            policy: BiddingPolicy::proactive_default(),
            mechanism: MechanismCombo::CKPT_LR_LIVE,
            storms: StormConfig::none(),
            traffic: TrafficConfig::diurnal_default(),
            min_vms: 2,
            max_vms: 200,
            control_interval: SimDuration::minutes(5),
            target_utilization: 0.6,
            scale_down_cooldown: SimDuration::minutes(20),
            slo_response_s: 1.0,
            vm_units: 1,
            per_vm_network: tpcw_network(
                TpcwConfig::NoImages,
                Platform::Nested,
                &NestedPenalties::xen_blanket(),
                200,
            ),
        }
    }
}

impl FleetSimConfig {
    /// The market scope every per-VM scheduler bids in.
    pub fn scope(&self) -> MarketScope {
        match self.zones.as_slice() {
            [zone] => MarketScope::MultiMarket(*zone),
            zones => MarketScope::MultiRegion(zones.to_vec()),
        }
    }

    /// Validate ranges; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.zones.is_empty() {
            return Err("fleet needs at least one zone".into());
        }
        if self.min_vms == 0 {
            return Err("min_vms must be >= 1".into());
        }
        if self.max_vms < self.min_vms {
            return Err(format!(
                "max_vms {} must be >= min_vms {}",
                self.max_vms, self.min_vms
            ));
        }
        if self.control_interval < SimDuration::secs(1) {
            return Err("control_interval must be >= 1s".into());
        }
        if !(0.0..=1.0).contains(&self.target_utilization) || self.target_utilization <= 0.0 {
            return Err(format!(
                "target_utilization must be in (0, 1]: {}",
                self.target_utilization
            ));
        }
        if !(self.slo_response_s.is_finite() && self.slo_response_s > 0.0) {
            return Err(format!(
                "slo_response_s must be positive: {}",
                self.slo_response_s
            ));
        }
        self.traffic.validate()
    }

    fn scheduler_config(&self, fleet_seed: u64) -> SchedulerConfig {
        SchedulerConfig::multi(self.scope())
            .with_policy(self.policy)
            .with_mechanism(self.mechanism)
            .with_capacity_units(self.vm_units)
            .with_storms(self.storms.clone())
            .with_storm_seed(fleet_seed)
    }
}

/// Fleet-level events on the shared queue. Control ticks are the only
/// kind today; the queue exists so fleet-scoped events (zone failovers,
/// maintenance drains) slot in beside them without re-architecting.
#[derive(Debug, Clone, Copy)]
enum FleetEv {
    /// Autoscaler control tick: step every VM, re-solve load, re-decide
    /// capacity.
    ControlTick,
}

/// One autoscaler control-tick observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSample {
    /// Tick time.
    pub t: SimTime,
    /// Offered concurrent users at the tick.
    pub users: f64,
    /// Fleet size the autoscaler wants.
    pub desired: u32,
    /// VMs alive (serving or booting/recovering) when the tick fired,
    /// before any scaling action; the action's effect appears in the
    /// next sample.
    pub live: u32,
    /// VMs actually serving users at the tick.
    pub serving: u32,
    /// User-weighted bottleneck utilisation (0 when nothing serves).
    pub utilization: f64,
    /// User-weighted mean response time, seconds (0 when nothing serves).
    pub mean_response_s: f64,
    /// Approximate p99 response time, seconds (0 when nothing serves).
    pub p99_response_s: f64,
}

/// Aggregated outcome of a fleet simulation. `PartialEq` so the
/// determinism proptest can compare whole reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSimReport {
    /// One observation per control tick, in time order.
    pub samples: Vec<FleetSample>,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Dollars the fleet actually spent (every VM's settled leases).
    pub total_cost: f64,
    /// Dollars the same VM-hours would have cost on on-demand servers
    /// (each VM's baseline over its own lifespan).
    pub od_equivalent_cost: f64,
    /// Dollars a static deployment provisioned for the observed peak
    /// (peak desired fleet size, on-demand, whole horizon) would cost —
    /// the no-autoscaler, no-spot alternative.
    pub static_peak_cost: f64,
    /// Total VM lifetime, hours.
    pub vm_hours: f64,
    /// Peak desired fleet size over the run.
    pub peak_vms: u32,
    /// VMs spawned (including the initial floor).
    pub spawned_vms: u32,
    /// VMs released by scale-downs.
    pub released_vms: u32,
    /// Scale-up / scale-down actions taken.
    pub scale_ups: u32,
    /// Scale-down actions taken.
    pub scale_downs: u32,
    /// Integral of offered users over time (user-seconds).
    pub offered_user_seconds: f64,
    /// User-seconds offered while *nothing* was serving (full outage).
    pub unserved_user_seconds: f64,
    /// Wall time with zero serving VMs, seconds.
    pub outage_seconds: f64,
    /// User-weighted mean response time over the run, seconds.
    pub mean_response_s: f64,
    /// Worst per-tick p99 response time, seconds.
    pub worst_p99_s: f64,
    /// Time-weighted mean of the per-tick utilisation.
    pub mean_utilization: f64,
    /// User-weighted SLO violation fraction (outage user-seconds count
    /// as violated).
    pub slo_violation_frac: f64,
    /// VM-lifespan-weighted unavailability across all VMs (each VM's own
    /// downtime from its scheduler run).
    pub vm_unavailability: f64,
    /// VM-lifespan-weighted fraction of lease time spent on spot.
    pub spot_fraction: f64,
    /// Summed per-VM migration counters.
    pub forced_migrations: u64,
    /// Planned (boundary) migrations across the fleet.
    pub planned_migrations: u64,
    /// Reverse (back-to-spot) migrations across the fleet.
    pub reverse_migrations: u64,
}

impl FleetSimReport {
    /// Fleet cost as a fraction of the static peak-provisioned on-demand
    /// deployment — the headline number: what autoscaling *and* spot
    /// together save over the textbook alternative.
    pub fn normalized_cost(&self) -> f64 {
        if self.static_peak_cost == 0.0 {
            0.0
        } else {
            self.total_cost / self.static_peak_cost
        }
    }

    /// Fleet cost as a fraction of the same VM-hours on on-demand —
    /// isolates the spot win from the autoscaling win.
    pub fn spot_cost_ratio(&self) -> f64 {
        if self.od_equivalent_cost == 0.0 {
            0.0
        } else {
            self.total_cost / self.od_equivalent_cost
        }
    }

    /// Fraction of offered user-seconds that found a serving fleet.
    pub fn service_availability(&self) -> f64 {
        if self.offered_user_seconds == 0.0 {
            1.0
        } else {
            1.0 - self.unserved_user_seconds / self.offered_user_seconds
        }
    }

    /// Render the report as the text block experiments and the CLI print.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet over {:.1} days: {} ticks, peak {} VMs, {} spawned / {} released ({} ups, {} downs)\n",
            self.horizon.as_hours_f64() / 24.0,
            self.samples.len(),
            self.peak_vms,
            self.spawned_vms,
            self.released_vms,
            self.scale_ups,
            self.scale_downs,
        ));
        out.push_str(&format!(
            "  cost: ${:.2} = {:.1}% of static-peak on-demand (${:.2}); {:.1}% of same-hours on-demand (${:.2})\n",
            self.total_cost,
            100.0 * self.normalized_cost(),
            self.static_peak_cost,
            100.0 * self.spot_cost_ratio(),
            self.od_equivalent_cost,
        ));
        out.push_str(&format!(
            "  service: availability {:.4}%, SLO violations {:.3}%, mean response {:.0} ms, worst p99 {:.0} ms\n",
            100.0 * self.service_availability(),
            100.0 * self.slo_violation_frac,
            1_000.0 * self.mean_response_s,
            1_000.0 * self.worst_p99_s,
        ));
        out.push_str(&format!(
            "  VMs: {:.0} VM-hours, unavailability {:.4}%, spot fraction {:.1}%, migrations {}F/{}P/{}R\n",
            self.vm_hours,
            100.0 * self.vm_unavailability,
            100.0 * self.spot_fraction,
            self.forced_migrations,
            self.planned_migrations,
            self.reverse_migrations,
        ));
        out
    }
}

/// One live VM: its stepping scheduler run plus fleet bookkeeping.
struct VmSlot<'t, S: Sink> {
    run: SimRun<'t, S>,
    started: SimTime,
    spawn_idx: u32,
}

/// The fleet simulator. Borrows a caller-owned [`TraceSet`] so every VM
/// shares the arena-backed market history; use [`run_fleet_sim`] for the
/// generate-and-run convenience path.
///
/// Generic over a [`SinkFactory`]: each spawned VM gets its own telemetry
/// sink tagged with the VM's stable spawn index, so a columnar store (or
/// any other factory) can demultiplex per-VM event streams afterwards.
/// The default [`NullSinkFactory`] monomorphizes every per-VM run to the
/// uninstrumented scheduler — the factory plumbing costs nothing unless a
/// real factory is attached via [`FleetSim::with_sinks`].
pub struct FleetSim<'t, F: SinkFactory = NullSinkFactory> {
    cfg: FleetSimConfig,
    traces: &'t TraceSet,
    sinks: F,
    sched_cfg: SchedulerConfig,
    traffic: TrafficModel,
    seed: u64,
    horizon: SimTime,
    queue: EventQueue<FleetEv>,
    vms: Vec<VmSlot<'t, F::Sink>>,
    scratch_pool: Vec<SimScratch>,
    per_vm_cap: u64,
    baseline_rate: f64,
    spawn_counter: u32,
    last_scale: SimTime,
    // accumulators
    samples: Vec<FleetSample>,
    finished: Vec<RunReport>,
    scale_ups: u32,
    scale_downs: u32,
    released: u32,
    offered_user_seconds: f64,
    unserved_user_seconds: f64,
    outage_seconds: f64,
    response_user_seconds: f64,
    violation_user_seconds: f64,
    utilization_seconds: f64,
    worst_p99_s: f64,
    peak_desired: u32,
}

// `new` is defined concretely on the `NullSinkFactory` instantiation:
// default type parameters don't guide function-call inference, so this is
// what keeps every existing `FleetSim::new(..)` call site compiling
// unchanged (mirroring `SimRun::new`).
impl<'t> FleetSim<'t> {
    /// Build the fleet over a trace set covering every market in scope.
    /// Panics on an invalid config (validate first for a soft error).
    pub fn new(cfg: FleetSimConfig, traces: &'t TraceSet, seed: u64) -> Self {
        FleetSim::with_sinks(cfg, traces, seed, NullSinkFactory)
    }
}

impl<'t, F: SinkFactory> FleetSim<'t, F> {
    /// [`FleetSim::new`] with a telemetry [`SinkFactory`]: every spawned
    /// VM's scheduler run is instrumented with `factory.make(spawn_idx)`,
    /// so the factory can tag each stream with the VM it came from.
    /// Panics on an invalid config (validate first for a soft error).
    pub fn with_sinks(cfg: FleetSimConfig, traces: &'t TraceSet, seed: u64, sinks: F) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid fleet sim config: {e}");
        }
        let horizon = SimTime::ZERO + traces.horizon();
        let traffic = TrafficModel::new(cfg.traffic.clone(), seed, traces.horizon());
        let per_vm_cap = capacity_at_utilization(&cfg.per_vm_network, cfg.target_utilization);
        let sched_cfg = cfg.scheduler_config(seed);
        let baseline_rate = cfg.scope().baseline_rate(traces.catalog(), cfg.vm_units);
        let mut queue = EventQueue::with_capacity(16);
        queue.push(SimTime::ZERO, FleetEv::ControlTick);
        FleetSim {
            cfg,
            traces,
            sinks,
            sched_cfg,
            traffic,
            seed,
            horizon,
            queue,
            vms: Vec::new(),
            scratch_pool: Vec::new(),
            per_vm_cap,
            baseline_rate,
            spawn_counter: 0,
            last_scale: SimTime::ZERO,
            samples: Vec::new(),
            finished: Vec::new(),
            scale_ups: 0,
            scale_downs: 0,
            released: 0,
            offered_user_seconds: 0.0,
            unserved_user_seconds: 0.0,
            outage_seconds: 0.0,
            response_user_seconds: 0.0,
            violation_user_seconds: 0.0,
            utilization_seconds: 0.0,
            worst_p99_s: 0.0,
            peak_desired: 0,
        }
    }

    /// Users one VM absorbs at the configured target utilisation.
    pub fn per_vm_capacity(&self) -> u64 {
        self.per_vm_cap
    }

    /// Run the whole simulation and report.
    pub fn run(mut self) -> FleetSimReport {
        // Boot the floor fleet at t = 0.
        for _ in 0..self.cfg.min_vms {
            self.spawn(SimTime::ZERO);
        }
        while let Some((t, ev)) = self.queue.pop() {
            if t >= self.horizon {
                break;
            }
            match ev {
                FleetEv::ControlTick => self.control_tick(t),
            }
        }
        // Settle every VM still alive at the horizon.
        let horizon = self.horizon;
        let vms = std::mem::take(&mut self.vms);
        for mut slot in vms {
            slot.run.step_until(SimTime::MAX);
            let (report, scratch) = slot.run.finish_at(horizon);
            self.finished.push(report);
            self.scratch_pool.push(scratch);
        }
        self.into_report()
    }

    /// Spawn one VM starting at `at`, drawing a fresh derived seed and
    /// recycling scratch when available. The sink factory is consulted
    /// with the VM's stable spawn index before the run begins, so its
    /// very first emissions are already tagged.
    fn spawn(&mut self, at: SimTime) {
        let vm_seed = derive_seed(self.seed, "fleet-vm", self.spawn_counter as u64);
        let scratch = self.scratch_pool.pop().unwrap_or_default();
        let sink = self.sinks.make(self.spawn_counter);
        let mut run = SimRun::with_scratch(self.traces, &self.sched_cfg, vm_seed, scratch)
            .with_sink(sink)
            .with_start(at);
        run.begin();
        self.vms.push(VmSlot {
            run,
            started: at,
            spawn_idx: self.spawn_counter,
        });
        self.spawn_counter += 1;
    }

    /// Release `k` VMs at `t`: non-serving victims first, then the
    /// youngest — a deterministic order that sheds booting or recovering
    /// capacity before touching stable servers.
    fn release(&mut self, k: usize, t: SimTime) {
        let mut order: Vec<usize> = (0..self.vms.len()).collect();
        order.sort_by_key(|&i| {
            let slot = &self.vms[i];
            (
                slot.run.is_serving(),
                std::cmp::Reverse(slot.started),
                std::cmp::Reverse(slot.spawn_idx),
            )
        });
        let mut victims: Vec<usize> = order.into_iter().take(k).collect();
        // Remove from the back so earlier indices stay valid.
        victims.sort_unstable_by(|a, b| b.cmp(a));
        for idx in victims {
            let slot = self.vms.remove(idx);
            let (report, scratch) = slot.run.finish_at(t);
            self.finished.push(report);
            self.scratch_pool.push(scratch);
            self.released += 1;
        }
    }

    fn control_tick(&mut self, t: SimTime) {
        // 1. Advance every VM to the tick, in spawn order.
        for slot in &mut self.vms {
            slot.run.step_until(t);
        }
        // 2. Observe load and solve the balanced queueing model.
        let users_f = self.traffic.users_at(t);
        let users = users_f.round().max(0.0) as u64;
        let serving = self.vms.iter().filter(|s| s.run.is_serving()).count() as u32;
        let dt = self
            .cfg
            .control_interval
            .min(SimDuration(self.horizon.0 - t.0));
        let dt_s = dt.0 as f64 / 1_000.0;
        let (utilization, mean_r, p99) = if serving > 0 {
            let load = fleet_response(
                &self.cfg.per_vm_network,
                users,
                serving as u64,
                self.cfg.slo_response_s,
            );
            self.violation_user_seconds += load.slo_violation_frac * users_f * dt_s;
            self.worst_p99_s = self.worst_p99_s.max(load.p99_response_s);
            (load.utilization, load.mean_response_s, load.p99_response_s)
        } else {
            // Nothing serving: a full outage interval. All offered
            // user-seconds are unserved and count as SLO violations.
            self.unserved_user_seconds += users_f * dt_s;
            self.violation_user_seconds += users_f * dt_s;
            self.outage_seconds += dt_s;
            (0.0, 0.0, 0.0)
        };
        self.offered_user_seconds += users_f * dt_s;
        self.response_user_seconds += mean_r * users_f * dt_s;
        self.utilization_seconds += utilization * dt_s;
        // 3. Target-tracking capacity decision.
        let desired = users
            .div_ceil(self.per_vm_cap)
            .max(self.cfg.min_vms as u64)
            .min(self.cfg.max_vms as u64) as u32;
        self.peak_desired = self.peak_desired.max(desired);
        let live = self.vms.len() as u32;
        if desired > live {
            for _ in live..desired {
                self.spawn(t);
            }
            self.scale_ups += 1;
            self.last_scale = t;
        } else if desired < live && t.0 - self.last_scale.0 >= self.cfg.scale_down_cooldown.0 {
            self.release((live - desired) as usize, t);
            self.scale_downs += 1;
            self.last_scale = t;
        }
        // 4. Record the tick (the pre-action observation the decision was
        // made on; the action's effect shows up in the next sample) and
        // schedule the next tick.
        self.samples.push(FleetSample {
            t,
            users: users_f,
            desired,
            live,
            serving,
            utilization,
            mean_response_s: mean_r,
            p99_response_s: p99,
        });
        let next = t + self.cfg.control_interval;
        if next < self.horizon {
            self.queue.push(next, FleetEv::ControlTick);
        }
    }

    fn into_report(self) -> FleetSimReport {
        let mut total_cost = 0.0;
        let mut od_equivalent_cost = 0.0;
        let mut vm_ms = 0.0f64;
        let mut down_ms = 0.0f64;
        let mut spot_weighted = 0.0f64;
        let mut forced = 0u64;
        let mut planned = 0u64;
        let mut reverse = 0u64;
        for r in &self.finished {
            total_cost += r.cost;
            od_equivalent_cost += r.baseline_cost;
            let span_ms = r.active_span.0 as f64;
            vm_ms += span_ms;
            down_ms += r.downtime.0 as f64;
            spot_weighted += r.spot_fraction * span_ms;
            forced += r.forced_migrations as u64;
            planned += r.planned_migrations as u64;
            reverse += r.reverse_migrations as u64;
        }
        let horizon = SimDuration(self.horizon.0);
        let static_peak_cost =
            self.peak_desired as f64 * self.baseline_rate * horizon.as_hours_f64();
        FleetSimReport {
            samples: self.samples,
            horizon,
            total_cost,
            od_equivalent_cost,
            static_peak_cost,
            vm_hours: vm_ms / 3_600_000.0,
            peak_vms: self.peak_desired,
            spawned_vms: self.spawn_counter,
            released_vms: self.released,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            offered_user_seconds: self.offered_user_seconds,
            unserved_user_seconds: self.unserved_user_seconds,
            outage_seconds: self.outage_seconds,
            mean_response_s: if self.offered_user_seconds == 0.0 {
                0.0
            } else {
                self.response_user_seconds / self.offered_user_seconds
            },
            worst_p99_s: self.worst_p99_s,
            mean_utilization: {
                let total_s = horizon.0 as f64 / 1_000.0;
                if total_s == 0.0 {
                    0.0
                } else {
                    self.utilization_seconds / total_s
                }
            },
            slo_violation_frac: if self.offered_user_seconds == 0.0 {
                0.0
            } else {
                self.violation_user_seconds / self.offered_user_seconds
            },
            vm_unavailability: if vm_ms == 0.0 { 0.0 } else { down_ms / vm_ms },
            spot_fraction: if vm_ms == 0.0 {
                0.0
            } else {
                spot_weighted / vm_ms
            },
            forced_migrations: forced,
            planned_migrations: planned,
            reverse_migrations: reverse,
        }
    }
}

/// Generate traces for the configured scope and run the fleet: the
/// convenience entry point experiments and the CLI use. Trace generation
/// is arena-backed, so a fleet sharing markets with other experiments in
/// the same process reuses their price histories.
pub fn run_fleet_sim(cfg: &FleetSimConfig, seed: u64, horizon: SimDuration) -> FleetSimReport {
    run_fleet_sim_with(cfg, seed, horizon, NullSinkFactory)
}

/// [`run_fleet_sim`] with a telemetry [`SinkFactory`] attached: every
/// spawned VM streams its events into `factory.make(spawn_idx)`. Pass a
/// `spothost_eventstore::ColumnarStore` to capture per-VM tagged columnar
/// telemetry of a whole fleet run.
pub fn run_fleet_sim_with<F: SinkFactory>(
    cfg: &FleetSimConfig,
    seed: u64,
    horizon: SimDuration,
    sinks: F,
) -> FleetSimReport {
    let catalog = Catalog::ec2_2015();
    let markets: Vec<_> = cfg
        .zones
        .iter()
        .flat_map(|&z| spothost_market::types::MarketId::all_in_zone(z))
        .collect();
    let traces = TraceSet::generate(&catalog, &markets, seed, horizon);
    FleetSim::with_sinks(cfg.clone(), &traces, seed, sinks).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> FleetSimConfig {
        FleetSimConfig {
            min_vms: 2,
            max_vms: 20,
            control_interval: SimDuration::minutes(15),
            traffic: TrafficConfig {
                base_users: 600.0,
                ..TrafficConfig::diurnal_default()
            },
            ..FleetSimConfig::default()
        }
    }

    #[test]
    fn fleet_serves_and_scales() {
        let report = run_fleet_sim(&small_cfg(), 7, SimDuration::days(7));
        assert!(report.peak_vms >= 2);
        assert!(report.spawned_vms >= report.peak_vms.min(20));
        assert!(report.total_cost > 0.0);
        assert!(report.vm_hours > 0.0);
        assert!(
            report.service_availability() > 0.95,
            "availability {}",
            report.service_availability()
        );
        // Diurnal swing must actually move the fleet.
        assert!(report.scale_ups > 0);
        assert!(report.scale_downs > 0, "fleet never scaled down");
        let sizes: Vec<u32> = report.samples.iter().map(|s| s.live).collect();
        let min = sizes.iter().min().copied().unwrap_or(0);
        let max = sizes.iter().max().copied().unwrap_or(0);
        assert!(max > min, "fleet size never moved: {min}..{max}");
    }

    #[test]
    fn fleet_beats_static_peak_on_demand() {
        let report = run_fleet_sim(&small_cfg(), 3, SimDuration::days(7));
        assert!(
            report.normalized_cost() < 0.5,
            "normalized {}",
            report.normalized_cost()
        );
        // And the spot layer alone also beats same-hours on-demand.
        assert!(
            report.spot_cost_ratio() < 0.6,
            "spot ratio {}",
            report.spot_cost_ratio()
        );
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = run_fleet_sim(&small_cfg(), 11, SimDuration::days(3));
        let b = run_fleet_sim(&small_cfg(), 11, SimDuration::days(3));
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        let c = run_fleet_sim(&small_cfg(), 12, SimDuration::days(3));
        assert_ne!(a.total_cost, c.total_cost, "seed must matter");
    }

    #[test]
    fn max_vms_caps_the_fleet() {
        let mut cfg = small_cfg();
        cfg.max_vms = 3;
        let report = run_fleet_sim(&cfg, 5, SimDuration::days(3));
        assert!(report.samples.iter().all(|s| s.live <= 3));
        assert_eq!(report.peak_vms, 3, "demand should want more than 3");
        // Overloaded fleet: utilisation pins high somewhere.
        let worst = report
            .samples
            .iter()
            .map(|s| s.utilization)
            .fold(0.0, f64::max);
        assert!(worst > 0.9, "worst utilization {worst}");
    }

    #[test]
    fn multi_region_fleet_runs() {
        let cfg = FleetSimConfig {
            zones: vec![Zone::UsEast1a, Zone::UsWest1a],
            ..small_cfg()
        };
        let report = run_fleet_sim(&cfg, 9, SimDuration::days(3));
        assert!(report.total_cost > 0.0);
        assert!(report.service_availability() > 0.9);
    }

    #[test]
    fn storms_do_not_break_the_fleet() {
        let calm = run_fleet_sim(&small_cfg(), 13, SimDuration::days(5));
        let stormy_cfg = FleetSimConfig {
            storms: StormConfig::intensity(0.5),
            ..small_cfg()
        };
        let stormy = run_fleet_sim(&stormy_cfg, 13, SimDuration::days(5));
        assert!(stormy.vm_unavailability >= calm.vm_unavailability);
        // Zero intensity is byte-identical to no storms at all.
        let zero_cfg = FleetSimConfig {
            storms: StormConfig::intensity(0.0),
            ..small_cfg()
        };
        let zero = run_fleet_sim(&zero_cfg, 13, SimDuration::days(5));
        assert_eq!(calm, zero);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small_cfg();
        cfg.min_vms = 0;
        assert!(cfg.validate().is_err());
        cfg = small_cfg();
        cfg.max_vms = 1;
        assert!(cfg.validate().is_err());
        cfg = small_cfg();
        cfg.target_utilization = 0.0;
        assert!(cfg.validate().is_err());
        assert!(small_cfg().validate().is_ok());
    }
}
