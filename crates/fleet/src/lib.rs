//! # spothost-fleet
//!
//! A SpotCheck-style *derivative cloud* pool (Sharma et al., EuroSys'15 —
//! the paper's §7: "Our work assumes the presence of such system level
//! mechanisms"): a provider that hosts many customers' nested VMs on a
//! fleet of spot and on-demand servers, using the `spothost-core`
//! scheduler per server group.
//!
//! Customer VMs declare a capacity demand in units (small = 1). The pool
//! bin-packs them into *placement groups* of at most one xlarge server's
//! worth of capacity (first-fit-decreasing). Each group migrates as one
//! unit under the cloud scheduler — all its VMs share a market, a bid, and
//! therefore a fate — exactly the packing §4, footnote 2 describes. A
//! group whose demand doesn't fill a supported server size pays for the
//! padding; the pool reports that *waste* so operators can see the cost of
//! fragmentation.
//!
//! The [`sim`] module goes one level up: a *service* simulation where a
//! reactive autoscaler grows and shrinks a fleet of per-VM schedulers
//! against a diurnal + flash-crowd demand curve, closing the loop with
//! the fleet-level MVA model (`spothost_workload::mva::fleet_response`).

// Library code must not unwrap (see DESIGN.md "Failure semantics").
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

pub mod packing;
pub mod pool;
pub mod report;
pub mod sim;
pub mod vm;

pub use packing::{pack, PlacementGroup};
pub use pool::{run_fleet, FleetConfig};
pub use report::FleetReport;
pub use sim::{
    run_fleet_sim, run_fleet_sim_with, FleetSample, FleetSim, FleetSimConfig, FleetSimReport,
};
pub use vm::CustomerVm;
