//! The pool manager: pack, schedule each group, aggregate.

use crate::packing::{pack, PlacementGroup};
use crate::report::{FleetReport, GroupOutcome};
use crate::vm::CustomerVm;
use rayon::prelude::*;
use spothost_core::config::SchedulerConfig;
use spothost_core::policy::BiddingPolicy;
use spothost_core::scheduler::SimRun;
use spothost_core::strategy::MarketScope;
use spothost_faults::StormConfig;
use spothost_market::catalog::Catalog;
use spothost_market::gen::TraceSet;
use spothost_market::time::SimDuration;
use spothost_market::types::Zone;
use spothost_virt::MechanismCombo;

/// Pool-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Zone(s) the pool operates in.
    pub zones: Vec<Zone>,
    /// Bidding policy of every placement group's scheduler.
    pub policy: BiddingPolicy,
    /// Migration mechanism combo of every placement group's scheduler.
    pub mechanism: MechanismCombo,
    /// Stability weight passed through to each group's scheduler.
    pub stability_weight: f64,
    /// Correlated-failure storms. One timeline is shared by every
    /// placement group (seeded from the fleet seed, not the per-group
    /// jittered seed): a storm hits all tenants in the zone at once,
    /// which is exactly the thundering-herd regime the pool must absorb.
    pub storms: StormConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            zones: vec![Zone::UsEast1a],
            policy: BiddingPolicy::proactive_default(),
            mechanism: MechanismCombo::CKPT_LR_LIVE,
            stability_weight: 0.0,
            storms: StormConfig::none(),
        }
    }
}

impl FleetConfig {
    fn scope(&self) -> MarketScope {
        match self.zones.as_slice() {
            [zone] => MarketScope::MultiMarket(*zone),
            zones => MarketScope::MultiRegion(zones.to_vec()),
        }
    }

    fn scheduler_config(&self, group: &PlacementGroup, fleet_seed: u64) -> SchedulerConfig {
        SchedulerConfig::multi(self.scope())
            .with_policy(self.policy)
            .with_mechanism(self.mechanism)
            .with_capacity_units(group.allocated_units())
            .with_stability_weight(self.stability_weight)
            .with_storms(self.storms.clone())
            // Pin the storm timeline to the fleet seed so every group
            // sees the same episodes and mass revocations, whatever its
            // jittered run seed.
            .with_storm_seed(fleet_seed)
    }
}

/// Host a set of customer VMs for `horizon`, returning fleet-level
/// accounting. All groups share one generated price history (they trade
/// in the same markets at the same time), and groups are simulated on the
/// rayon pool.
pub fn run_fleet(
    vms: &[CustomerVm],
    cfg: &FleetConfig,
    seed: u64,
    horizon: SimDuration,
) -> FleetReport {
    assert!(!vms.is_empty(), "fleet needs at least one VM");
    assert!(!cfg.zones.is_empty(), "fleet needs at least one zone");
    let groups = pack(vms);
    let catalog = Catalog::ec2_2015();
    // One trace set covers every market any group can bid in.
    let markets: Vec<_> = cfg
        .zones
        .iter()
        .flat_map(|&z| spothost_market::types::MarketId::all_in_zone(z))
        .collect();
    let traces = TraceSet::generate(&catalog, &markets, seed, horizon);

    let outcomes: Vec<GroupOutcome> = groups
        .par_iter()
        .enumerate()
        .map(|(i, group)| {
            let sched_cfg = cfg.scheduler_config(group, seed);
            // Distinct provider streams per group (startup jitter), same
            // shared price history.
            let report = SimRun::new(&traces, &sched_cfg, seed.wrapping_add(i as u64)).run();
            GroupOutcome {
                group: group.clone(),
                report,
            }
        })
        .collect();

    FleetReport::aggregate(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vms(n: u64) -> Vec<CustomerVm> {
        // A realistic mixed tenant population: many smalls, some mediums,
        // a few larges.
        (0..n)
            .map(|i| {
                let units = match i % 7 {
                    0..=3 => 1,
                    4 | 5 => 2,
                    _ => 4,
                };
                CustomerVm::new(i, units)
            })
            .collect()
    }

    #[test]
    fn fleet_hosts_everyone_cheaply() {
        let report = run_fleet(&vms(20), &FleetConfig::default(), 7, SimDuration::days(21));
        assert_eq!(report.total_vms(), 20);
        assert!(
            report.normalized_cost() < 0.5,
            "{}",
            report.normalized_cost()
        );
        assert!(report.vm_weighted_unavailability() < 0.01);
        assert!(report.waste_fraction() < 0.5);
    }

    #[test]
    fn fleet_is_deterministic() {
        let a = run_fleet(&vms(10), &FleetConfig::default(), 3, SimDuration::days(7));
        let b = run_fleet(&vms(10), &FleetConfig::default(), 3, SimDuration::days(7));
        assert_eq!(a.total_cost(), b.total_cost());
        assert_eq!(
            a.vm_weighted_unavailability(),
            b.vm_weighted_unavailability()
        );
    }

    #[test]
    fn on_demand_fleet_is_the_expensive_baseline() {
        let cfg = FleetConfig {
            policy: BiddingPolicy::OnDemandOnly,
            ..FleetConfig::default()
        };
        let od = run_fleet(&vms(10), &cfg, 3, SimDuration::days(14));
        let spot = run_fleet(&vms(10), &FleetConfig::default(), 3, SimDuration::days(14));
        assert!(spot.total_cost() < od.total_cost() * 0.5);
        assert_eq!(od.vm_weighted_unavailability(), 0.0);
    }

    #[test]
    fn storms_hit_the_whole_fleet_and_zero_intensity_is_free() {
        // Zero intensity builds no schedule: bit-identical to the
        // storm-free default, even with the storm seed pinned.
        let calm = run_fleet(&vms(10), &FleetConfig::default(), 3, SimDuration::days(14));
        let zero = FleetConfig {
            storms: StormConfig::intensity(0.0),
            ..FleetConfig::default()
        };
        let zero = run_fleet(&vms(10), &zero, 3, SimDuration::days(14));
        assert_eq!(calm.total_cost(), zero.total_cost());
        assert_eq!(
            calm.vm_weighted_unavailability(),
            zero.vm_weighted_unavailability()
        );

        // Full-intensity storms share one timeline across all groups
        // (mass revocations land fleet-wide), and the pool degrades but
        // still terminates deterministically.
        let stormy_cfg = FleetConfig {
            storms: StormConfig::intensity(1.0),
            ..FleetConfig::default()
        };
        let stormy = run_fleet(&vms(10), &stormy_cfg, 3, SimDuration::days(14));
        let again = run_fleet(&vms(10), &stormy_cfg, 3, SimDuration::days(14));
        assert_eq!(stormy.total_cost(), again.total_cost());
        assert!(
            stormy.vm_weighted_unavailability() > calm.vm_weighted_unavailability(),
            "storms {} vs calm {}",
            stormy.vm_weighted_unavailability(),
            calm.vm_weighted_unavailability()
        );
    }

    #[test]
    fn multi_zone_fleet_works() {
        let cfg = FleetConfig {
            zones: vec![Zone::UsEast1a, Zone::UsEast1b],
            ..FleetConfig::default()
        };
        let report = run_fleet(&vms(6), &cfg, 5, SimDuration::days(7));
        assert!(report.total_cost() > 0.0);
    }
}
