//! Offline vendored ChaCha random number generators.
//!
//! A faithful implementation of the ChaCha stream cipher keyed from a
//! 256-bit seed, exposed with the `rand_chacha` crate's type names
//! (`ChaCha8Rng` / `ChaCha12Rng` / `ChaCha20Rng`). ChaCha gives the
//! properties the simulator's seeding scheme relies on:
//!
//! * deterministic, platform-independent streams from a seed,
//! * statistically independent streams from independent seeds (the
//!   generator derives one seed per (role, id) pair),
//! * cheap construction, so thousands of per-market streams are fine.
//!
//! The word layout follows RFC 7539 (constants, 8 key words, 64-bit block
//! counter in words 12–13, zero nonce) with output words consumed in
//! block order.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `R` double-rounds over the input state, then the
/// feed-forward addition.
fn block<const R: usize>(input: &[u32; 16], out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..R {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

/// ChaCha keystream generator with `R` double-rounds (ChaCha12 = 6).
#[derive(Debug, Clone)]
pub struct ChaChaRng<const R: usize> {
    /// Input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    index: usize,
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        block::<R>(&self.state, &mut self.buf);
        // 64-bit block counter in words 12-13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaChaRng {
            state,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

pub type ChaCha8Rng = ChaChaRng<4>;
pub type ChaCha12Rng = ChaChaRng<6>;
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.3.2 test vector (ChaCha20 block function).
    #[test]
    fn chacha20_block_matches_rfc7539() {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        // Key 00 01 02 ... 1f.
        let key: Vec<u8> = (0u8..32).collect();
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            input[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        input[12] = 1; // block counter
        input[13] = 0x0900_0000; // nonce
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let mut out = [0u32; 16];
        block::<10>(&input, &mut out);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[1], 0x1515_9c35);
        assert_eq!(out[15], 0x4e3c_50a2);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let mut c = ChaCha12Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut bytes = [0u8; 16];
        a.fill_bytes(&mut bytes);
        for chunk in bytes.chunks_exact(4) {
            assert_eq!(u32::from_le_bytes(chunk.try_into().unwrap()), b.next_u32());
        }
    }

    #[test]
    fn counter_crosses_block_boundaries() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        // Consume several blocks; values must keep changing (no stuck
        // counter), and a fresh clone replays identically.
        let first: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let mut replay = ChaCha12Rng::seed_from_u64(1);
        let again: Vec<u32> = (0..64).map(|_| replay.next_u32()).collect();
        assert_eq!(first, again);
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert!(distinct.len() > 60, "keystream words should be distinct");
    }
}
