//! Uniform value derivation: the `Standard` distribution and range
//! sampling, matching `rand` 0.8's conventions (53-bit `f64` uniforms,
//! widening-multiply integer ranges).

use crate::{Rng, RngCore};

/// Types that can produce values of `T` from a bit source.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution: `[0, 1)` for floats, full range
/// for integers, fair coin for `bool`.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, exactly the upstream derivation:
        // uniform on [0, 1) with 2^-53 resolution.
        let bits = rng.next_u64() >> 11;
        bits as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let bits = rng.next_u32() >> 8;
        bits as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that can be sampled from directly (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `[0, bound)` via Lemire's widening-multiply
/// rejection method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply maps a 64-bit draw onto [0, bound); reject draws
    // from the short final stripe to keep the map exactly uniform.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u64, u32, u16, u8, usize);

macro_rules! impl_int_range {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(i64 as u64, i32 as u32, isize as usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: f64 = Standard.sample(rng);
                let v = self.start as f64 + u * (self.end as f64 - self.start as f64);
                // Floating rounding can land exactly on `end`; clamp back
                // inside the half-open interval.
                if v >= self.end as f64 {
                    <$t>::max(self.start, <$t>::from_bits(
                        (self.end as $t).to_bits() - 1))
                } else {
                    v as $t
                }
            }
        }
    )*};
}

impl_float_range!(f64);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample_single(rng) as f32
    }
}
