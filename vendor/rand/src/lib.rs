//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64-based
//! `seed_from_u64`), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), and the [`distributions::Standard`] uniform source for
//! `f64`/`u64`/`u32`/`bool`.
//!
//! The implementations follow the upstream value-derivation conventions
//! (53-bit mantissa uniforms in `[0, 1)`, SplitMix64 seed expansion) so
//! statistical behaviour matches what the simulation was designed
//! against. Exact bit-compatibility with upstream `rand` streams is not
//! guaranteed and nothing in this repository depends on it: every
//! experiment regenerates its traces from seeds with this same crate.

pub mod distributions;

use distributions::{Distribution, SampleRange, Standard};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the same scheme
    /// `rand_core` 0.6 uses), so small seed integers still produce
    /// well-mixed, independent states.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution (`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (half-open `lo..hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Placeholder module mirroring `rand::rngs`; the workspace only uses
    //! `rand_chacha` generators, which live in their own vendored crate.
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter "RNG" for API tests.
    struct StepRng(u64);
    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StepRng(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StepRng(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
