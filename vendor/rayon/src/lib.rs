//! Offline vendored subset of the `rayon` parallel-iterator API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of rayon the workspace uses — `into_par_iter()` /
//! `par_iter()` with `map`, `enumerate`, `collect`, `sum` — backed by
//! real OS-thread parallelism: items are split into one contiguous chunk
//! per available core and executed on scoped threads, preserving input
//! order in the output.
//!
//! This is not a work-stealing scheduler. For the simulation workloads in
//! this repository (hundreds of near-equal-cost Monte-Carlo runs) static
//! chunking is within a few percent of work stealing, and determinism is
//! trivially preserved because results are reassembled in input order.

use std::num::NonZeroUsize;

/// Number of worker threads to use for a job of `n` items.
fn threads_for(n: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(n).max(1)
}

/// Run `f` over `items` on scoped threads, one contiguous chunk per
/// worker, returning outputs in input order.
fn par_exec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = threads_for(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(workers);
    // Split into owned chunks up front so each thread owns its inputs.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(chunk_len);
        chunks.push(rest);
        rest = tail;
    }
    chunks.push(rest);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon worker panicked"));
        }
        out
    })
}

pub mod iter {
    use super::par_exec;

    /// An eager parallel iterator: the items are materialised, transforms
    /// are applied in parallel at the terminal operation.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    /// A mapped parallel iterator, terminal-operation driven.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T: Send> ParIter<T> {
        pub fn enumerate(self) -> ParIter<(usize, T)> {
            ParIter {
                items: self.items.into_iter().enumerate().collect(),
            }
        }

        /// Chunk-size hint; static chunking ignores it.
        pub fn with_min_len(self, _min: usize) -> Self {
            self
        }

        pub fn map<R, F>(self, f: F) -> ParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    impl<T, R, F> ParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        pub fn collect<C: FromIterator<R>>(self) -> C {
            par_exec(self.items, &self.f).into_iter().collect()
        }

        pub fn sum<S: std::iter::Sum<R>>(self) -> S {
            par_exec(self.items, &self.f).into_iter().sum()
        }
    }

    /// `into_par_iter()` — by-value parallel iteration.
    pub trait IntoParallelIterator {
        type Item: Send;
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    macro_rules! impl_range {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for core::ops::Range<$t> {
                type Item = $t;
                fn into_par_iter(self) -> ParIter<$t> {
                    ParIter { items: self.collect() }
                }
            }
        )*};
    }

    impl_range!(u64, u32, usize, i64, i32);

    /// `par_iter()` — by-reference parallel iteration.
    pub trait IntoParallelRefIterator<'a> {
        type Item: Send + 'a;
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

/// Current number of worker threads a parallel job may use.
pub fn current_num_threads() -> usize {
    threads_for(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 3).collect();
        let expect: Vec<u64> = (0u64..10_000).map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_iter_enumerate() {
        let data = vec!["a", "b", "c", "d"];
        let out: Vec<(usize, String)> = data
            .par_iter()
            .enumerate()
            .map(|(i, s)| (i, s.to_string()))
            .collect();
        assert_eq!(out[2], (2, "c".to_string()));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn sum_matches_serial() {
        let par: u64 = (0u64..1_000).into_par_iter().map(|x| x * x).sum();
        let ser: u64 = (0u64..1_000).map(|x| x * x).sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0u64..256)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let n = seen.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            > 1
        {
            assert!(n > 1, "expected multiple worker threads, saw {n}");
        }
    }
}
