//! Offline vendored subset of the `criterion` micro-benchmark API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of criterion the workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a real
//! wall-clock measurement loop: per-sample iteration counts are sized so
//! each sample runs for a few milliseconds, and the reported statistics
//! (min / mean / max over samples) come from `std::time::Instant`.
//!
//! This is not a statistical benchmarking framework: no outlier analysis,
//! no regression detection, no plots. The numbers it prints are honest
//! wall-clock per-iteration times, which is what the repository's
//! performance tables need.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (modern criterion forwards
/// to `std::hint::black_box` too).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Target wall time for one measurement sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Default number of samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Collects per-iteration timings for one benchmark target.
pub struct Bencher {
    /// Mean per-iteration duration of each recorded sample, in seconds.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Measure `routine`: warm up, pick an iteration count that makes one
    /// sample take ~[`TARGET_SAMPLE_TIME`], then record `sample_size`
    /// samples of the mean per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: run until we have a per-iter estimate.
        let start = Instant::now();
        let mut calib_iters = 0u64;
        loop {
            hint::black_box(routine());
            calib_iters += 1;
            if start.elapsed() >= TARGET_SAMPLE_TIME || calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / calib_iters as f64;
        let iters_per_sample =
            ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples.push(dt / iters_per_sample as f64);
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{:<40} time: [{} {} {}]",
        id,
        format_time(min),
        format_time(mean),
        format_time(max)
    );
}

/// Top-level benchmark driver, one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Ignored: the vendored harness sizes samples from
    /// [`TARGET_SAMPLE_TIME`] instead.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, &b.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks (`group/bench` ids in reports).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Ignored, as on [`Criterion`].
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id.as_ref()), &b.samples);
        self
    }

    pub fn finish(&mut self) {}
}

/// Build a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Build `main` from one or more `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| black_box(2u64 + 2));
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut ran = false;
        {
            let mut g = c.benchmark_group("test");
            g.sample_size(2).bench_function("noop", |b| {
                b.iter(|| black_box(1));
                ran = true;
            });
            g.finish();
        }
        assert!(ran);
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-6).ends_with("µs"));
        assert!(format_time(5e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with('s'));
    }
}
