//! Offline vendored property-testing harness with the `proptest` API
//! surface this workspace uses.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of `proptest` the test suites rely on:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_filter`,
//! * range, tuple, [`strategy::Just`], [`prop_oneof!`], `collection::vec`
//!   and `bool::ANY` strategies,
//! * `prop_assert!` / `prop_assert_eq!` returning structured failures.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   deterministic per-test seed; re-running the test replays the same
//!   inputs, which is what matters for debugging here.
//! * **Deterministic seeding.** Each test's RNG is seeded from the hash
//!   of its full module path, so failures are reproducible across runs
//!   and machines rather than sampled fresh per invocation.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`, the path-style entry to the
    /// strategy modules.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Run a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "property `{}` failed at case {}/{} (deterministic seed; rerun reproduces): {}",
                        stringify!($name), case + 1, cfg.cases, e,
                    );
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// structured error instead of a panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Choose uniformly between heterogeneous strategies with a common value
/// type (upstream's weighted arms are not supported — none are used in
/// this workspace).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 19);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..100, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for x in &v {
                prop_assert!(*x < 100);
            }
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u32), Just(2u32), (5u32..8)]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }

        #[test]
        fn filter_respects_predicate(x in (0u64..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn bools_show_up(b in prop::bool::ANY) {
            prop_assert!(b || !b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(_x in 0u64..10) {
            // Body runs exactly `cases` times; nothing to assert per-case.
        }
    }

    #[test]
    #[should_panic(expected = "property `fails` failed")]
    fn failures_panic_with_context() {
        proptest! {
            #[test]
            fn fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        fails();
    }
}
