//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec size range must be non-empty");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.inner().gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
