//! Test-run configuration, RNG, and case errors.

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use std::hash::{Hash, Hasher};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default. Override per-run with PROPTEST_CASES when
        // iterating locally.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// The harness RNG: ChaCha12 seeded deterministically from the test's
/// module path, so every run of a given test replays the same cases.
pub struct TestRng {
    rng: ChaCha12Rng,
}

impl TestRng {
    pub fn for_test(test_path: &str) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // Fixed salt decouples the stream from DefaultHasher's default
        // keying of unrelated uses.
        0x5054_4553u64.hash(&mut h); // "PTES"
        test_path.hash(&mut h);
        TestRng {
            rng: ChaCha12Rng::seed_from_u64(h.finish()),
        }
    }

    /// The underlying `rand` generator, for strategies.
    pub fn inner(&mut self) -> &mut ChaCha12Rng {
        &mut self.rng
    }
}

/// A failed case: carries the formatted assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
