//! Strategies: composable recipes for generating test inputs.

use crate::test_runner::TestRng;
use rand::Rng;

/// How many times a `prop_filter` may reject before the harness gives up
/// (matches upstream's local-rejection spirit; the workspace's filters
/// accept the overwhelming majority of draws).
const MAX_FILTER_REJECTS: u32 = 1_000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Reject generated values failing the predicate (resampling; panics
    /// after [`MAX_FILTER_REJECTS`] consecutive rejections).
    fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter \"{}\" rejected {} consecutive samples",
            self.whence, MAX_FILTER_REJECTS
        );
    }
}

/// Object-safe strategy view, for heterogeneous `prop_oneof!` arms.
pub trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.inner().gen_range(0..self.arms.len());
        self.arms[i].sample_dyn(rng)
    }
}

// --- ranges ----------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64, f32);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
