//! Boolean strategies (`prop::bool::ANY`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A fair coin.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Uniformly random `bool`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.inner().gen::<bool>()
    }
}
